//! # gcgt-session
//!
//! The unified traversal API of the workspace: a [`Session`] owns the whole
//! pipeline the paper describes — preprocessing (symmetrization, node
//! reordering), CGR encoding, device-capacity checking and engine
//! construction — behind one typed builder, and every application runs on it
//! uniformly through the [`Algorithm`] trait:
//!
//! ```
//! use gcgt_graph::gen::{web_graph, WebParams};
//! use gcgt_graph::order::LlpConfig;
//! use gcgt_graph::Reordering;
//! use gcgt_session::{Bfs, EngineKind, Session};
//! use gcgt_core::Strategy;
//! use gcgt_simt::DeviceConfig;
//!
//! let graph = web_graph(&WebParams::uk2002_like(2_000), 42);
//! let session = Session::builder()
//!     .graph(graph)
//!     .reorder(Reordering::Llp(LlpConfig::default()))
//!     .device(DeviceConfig::titan_v_scaled(64 << 20))
//!     .engine(EngineKind::Gcgt(Strategy::Full))
//!     .build()
//!     .unwrap();
//! let run = session.run(Bfs::from(0));
//! assert_eq!(run.output.depth[0], 0);
//! ```
//!
//! Underneath, the session dispatches at runtime over the engines of the
//! workspace — the GCGT compressed engine at any [`Strategy`], and the
//! uncompressed `GPUCSR` / Gunrock-style baselines — through the object-safe
//! [`DynExpander`] layer of `gcgt-core`, so adding an engine variant touches
//! one `match` in this crate instead of every call site.
//!
//! For serving-scale workloads, [`Session::run_batch`] executes many queries
//! against **one device residency**: the graph is uploaded and allocated
//! once, every query accounts on the same simulated device, and the
//! [`BatchRun`] reports both per-query and aggregate statistics. This is the
//! multi-source BFS/BC batching workload (EMOGI-style serving) the ROADMAP
//! targets.
//!
//! ## Shared immutable graphs, per-worker execution
//!
//! Everything a builder computes — reordering, CGR encoding, footprints, the
//! streaming partition plan — lands in an immutable, `Send + Sync`
//! [`PreparedGraph`]. A `Session` is a thin single-worker wrapper around an
//! `Arc<PreparedGraph>`; concurrent consumers (the `gcgt-serve` worker pool)
//! share the same `Arc` and give each worker its own [`Executor`]: a
//! per-worker simulated device holding the structure resident, plus
//! per-query engine state (each query gets a cold out-of-core partition
//! cache of its own — never shared across queries or workers, which is
//! what keeps fault statistics reproducible). Every query executes from
//! the worker's post-upload
//! baseline on a fresh accounting view, so its output **and** its
//! [`RunStats`] are bitwise identical to a serial [`Session::run`] — worker
//! count and scheduling can never change a simulated number.
//!
//! ```
//! use gcgt_graph::gen::toys;
//! use gcgt_session::{Bfs, Executor, PreparedGraph, Session};
//! use std::sync::Arc;
//!
//! let prepared: Arc<PreparedGraph> =
//!     Session::builder().graph(toys::figure1()).build().unwrap().prepared();
//! let mut worker = Executor::new(&prepared);
//! let a = worker.run(Bfs::from(0));
//! let b = worker.run(Bfs::from(0));
//! assert_eq!(a.output, b.output);
//! assert_eq!(a.stats, b.stats); // bitwise — history never leaks into a query
//! assert_eq!(worker.allocated(), worker.baseline());
//! ```
//!
//! ## Direction-optimizing traversal
//!
//! [`SessionBuilder::direction`] layers Beamer-style push/pull switching
//! over every engine: push levels expand the frontier's out-edges, pull
//! levels scan *unvisited* nodes' compressed adjacency with early exit,
//! and [`DirectionMode::Adaptive`] picks per level with the Ligra density
//! heuristic (pull when the frontier's out-degree sum exceeds
//! `num_edges / `[`PULL_ALPHA`]). Pull requires symmetric adjacency —
//! add [`SessionBuilder::symmetrize`]; the saving is reported in
//! [`RunStats`] (`push_steps`/`pull_steps`/`pushed_edges`/`pulled_edges`):
//!
//! ```
//! use gcgt_graph::gen::{social_graph, SocialParams};
//! use gcgt_session::{Bfs, DirectionMode, Session};
//!
//! let graph = social_graph(&SocialParams::twitter_like(600), 7);
//! let run_with = |direction| {
//!     Session::builder()
//!         .graph(graph.clone())
//!         .symmetrize(true)
//!         .direction(direction)
//!         .build()
//!         .unwrap()
//!         .run(Bfs::from(0))
//! };
//! let push = run_with(DirectionMode::Push);
//! let adaptive = run_with(DirectionMode::Adaptive);
//! assert_eq!(push.output.depth, adaptive.output.depth); // identical answers
//! assert!(adaptive.stats.pull_steps >= 1);
//! assert!(
//!     adaptive.stats.pushed_edges + adaptive.stats.pulled_edges
//!         < push.stats.pushed_edges
//! );
//! ```
//!
//! ## Graphs larger than the device
//!
//! [`SessionBuilder::memory_budget`] plus [`EngineKind::OutOfCore`] lifts
//! the hard capacity wall: when the compressed graph fits the budget the
//! session behaves exactly like the in-core engine, and when it does not,
//! `build` still succeeds — the graph is split into compressed partitions
//! (`gcgt-ooc`) that stream over the PCIe link per frontier iteration, with
//! faults, evictions and streamed milliseconds reported in
//! [`RunStats`]:
//!
//! ```
//! use gcgt_graph::gen::{web_graph, WebParams};
//! use gcgt_session::{Bfs, EngineKind, Session};
//! use gcgt_core::Strategy;
//!
//! let graph = web_graph(&WebParams::uk2002_like(3_000), 42);
//! let incore = Session::builder().graph(graph.clone()).build().unwrap();
//! let budget = incore.footprint() * 2 / 3; // the graph does NOT fit this
//! let session = Session::builder()
//!     .graph(graph)
//!     .memory_budget(budget)
//!     .engine(EngineKind::OutOfCore {
//!         inner: Strategy::Full,
//!     })
//!     .build()
//!     .unwrap(); // would be SessionError::Oom with EngineKind::Gcgt
//! assert!(session.is_streaming());
//! let run = session.run(Bfs::from(0));
//! assert!(run.stats.partition_faults > 0);
//! assert!(run.stats.transfer_ms > 0.0);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]
use std::sync::Arc;

use gcgt_baselines::{GpuCsrEngine, GunrockEngine};
use gcgt_cgr::{CgrConfig, CgrGraph};
use gcgt_core::{memory, Algorithm, DynExpander, GcgtEngine, Strategy};
use gcgt_graph::{Csr, NodeId, Reordering};
use gcgt_ooc::{OocEngine, PartitionMap};
use gcgt_shard::{ShardEngine, ShardOocParams};
use gcgt_simt::{Device, DeviceConfig, OomError, PcieConfig, RunStats};

pub use gcgt_core::{
    Bc, Bfs, Cc, DirectionMode, LabelProp, Pagerank, Query, QueryOutput, PULL_ALPHA,
};
pub use gcgt_ooc::OocConfig;
pub use gcgt_shard::{ShardInner, ShardPlan};
pub use gcgt_simt::{
    FaultDomain, FaultPlan, FaultRate, InterconnectConfig, Observer, ObserverHandle, RetryPolicy,
    TypedFailure,
};

/// Which traversal engine a session drives — selected at **runtime**.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The paper's compressed-graph engine, at the given scheduling
    /// strategy rung (Figure 9 ladder; `Strategy::Full` is the complete
    /// GCGT).
    Gcgt(Strategy),
    /// Merrill-style BFS on uncompressed CSR (the `GPUCSR` baseline).
    GpuCsr,
    /// Gunrock-style advance+filter platform (~3× memory footprint).
    Gunrock,
    /// Out-of-core GCGT: compressed partitions streamed over the PCIe link
    /// when the graph exceeds the session's memory budget; identical to
    /// `Gcgt(inner)` when it fits. Combine with
    /// [`SessionBuilder::memory_budget`].
    OutOfCore {
        /// The GCGT scheduling strategy used to decode whatever is
        /// resident.
        inner: Strategy,
    },
    /// Sharded multi-device traversal: the graph is placed onto `devices`
    /// modeled GPUs as contiguous node-aligned shards, every frontier step
    /// runs owner-computes with an all-to-all boundary-bitmap exchange over
    /// the session's [`InterconnectConfig`], and each shard runs the given
    /// inner engine. Outputs and kernel-side [`RunStats`] stay bitwise
    /// identical to the serial engine at any device count; the exchange is
    /// reported in `RunStats::{exchange_ms, boundary_nodes, sync_steps}`.
    /// Usually reached through [`SessionBuilder::shards`].
    Sharded {
        /// The engine running inside each shard.
        inner: ShardInner,
        /// How many modeled devices the graph is placed onto (≥ 1).
        devices: usize,
    },
}

impl EngineKind {
    /// The GPU approaches of Figures 8 and 15, in the paper's order.
    pub const GPU_COMPARISON: [EngineKind; 3] = [
        EngineKind::Gunrock,
        EngineKind::GpuCsr,
        EngineKind::Gcgt(Strategy::Full),
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Gcgt(_) => "GCGT",
            EngineKind::GpuCsr => "GPUCSR",
            EngineKind::Gunrock => "Gunrock",
            EngineKind::OutOfCore { .. } => "GCGT-OOC",
            EngineKind::Sharded { inner, .. } => match inner {
                ShardInner::Gcgt(_) => "GCGT-Shard",
                ShardInner::OutOfCore(_) => "GCGT-OOC-Shard",
                ShardInner::GpuCsr => "GPUCSR-Shard",
                ShardInner::Gunrock => "Gunrock-Shard",
            },
        }
    }

    /// The strategy, when this is a GCGT engine (in-core, out-of-core, or
    /// either inside shards).
    pub fn strategy(&self) -> Option<Strategy> {
        match self {
            EngineKind::Gcgt(s) | EngineKind::OutOfCore { inner: s } => Some(*s),
            EngineKind::Sharded {
                inner: ShardInner::Gcgt(s) | ShardInner::OutOfCore(s),
                ..
            } => Some(*s),
            _ => None,
        }
    }

    /// This engine placed onto `devices` modeled GPUs: wraps the kind into
    /// [`EngineKind::Sharded`] (re-sharding an already sharded kind just
    /// changes the device count).
    #[must_use]
    pub fn sharded(self, devices: usize) -> EngineKind {
        let inner = match self {
            EngineKind::Gcgt(s) => ShardInner::Gcgt(s),
            EngineKind::GpuCsr => ShardInner::GpuCsr,
            EngineKind::Gunrock => ShardInner::Gunrock,
            EngineKind::OutOfCore { inner } => ShardInner::OutOfCore(inner),
            EngineKind::Sharded { inner, .. } => inner,
        };
        EngineKind::Sharded { inner, devices }
    }

    /// The engine kind running inside each shard — `self` for non-sharded
    /// kinds. This is what encoding, footprints and capacity checks key
    /// off: sharding changes placement and exchange accounting, never the
    /// structure.
    pub fn inner_kind(&self) -> EngineKind {
        match *self {
            EngineKind::Sharded { inner, .. } => match inner {
                ShardInner::Gcgt(s) => EngineKind::Gcgt(s),
                ShardInner::OutOfCore(s) => EngineKind::OutOfCore { inner: s },
                ShardInner::GpuCsr => EngineKind::GpuCsr,
                ShardInner::Gunrock => EngineKind::Gunrock,
            },
            k => k,
        }
    }

    /// Builds a session over `graph` for this engine on `device` — the
    /// one-liner the experiment harness sweeps engines with (replaces the
    /// per-call-site engine-construction match ladders).
    pub fn session(&self, graph: Arc<Csr>, device: DeviceConfig) -> Result<Session, SessionError> {
        Session::builder()
            .graph_shared(graph)
            .device(device)
            .engine(*self)
            .build()
    }
}

/// Why a session could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// `graph(..)` was never called.
    MissingGraph,
    /// The graph has no nodes.
    EmptyGraph,
    /// The explicit `compress(..)` configuration's layout (segmented or
    /// not) contradicts what the selected GCGT strategy traverses.
    LayoutMismatch {
        /// The selected strategy.
        strategy: Strategy,
        /// Whether the supplied configuration was segmented.
        config_segmented: bool,
    },
    /// `compress(..)` was supplied for an engine that traverses raw CSR
    /// and would silently ignore it.
    CompressUnsupported {
        /// The selected (non-GCGT) engine.
        engine: EngineKind,
    },
    /// [`DirectionMode::Pull`] was requested over a graph whose adjacency
    /// is not symmetric: pull scans a node's *stored* adjacency for
    /// frontier parents, which is only its in-neighbour set when every edge
    /// has its reverse. (`Adaptive` degrades to push instead of erroring.)
    AsymmetricPull,
    /// A sharded session was requested with zero devices.
    ZeroShards,
    /// [`SessionBuilder::graph_compressed`] was combined with a builder
    /// option that only applies to raw-CSR input — the compressed graph's
    /// encoding (and the preprocessing baked into it) is already fixed.
    CompressedInputConflict {
        /// The conflicting builder call.
        what: &'static str,
    },
    /// A pre-encoded graph failed structural validation when the session
    /// needed it proven (e.g. a deferred-validation load whose full decode
    /// the session performs at prepare time).
    CorruptGraph(String),
    /// Graph plus traversal buffers exceed the device memory.
    Oom(OomError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::MissingGraph => write!(f, "no graph supplied to the session builder"),
            SessionError::EmptyGraph => write!(f, "cannot build a session over an empty graph"),
            SessionError::LayoutMismatch {
                strategy,
                config_segmented,
            } => write!(
                f,
                "CGR layout mismatch: strategy {strategy:?} {} a segmented layout but the \
                 supplied CgrConfig {} (use strategy.cgr_config(..) or drop compress(..))",
                if strategy.needs_segmented_layout() {
                    "requires"
                } else {
                    "cannot traverse"
                },
                if *config_segmented {
                    "sets segment_len_bytes"
                } else {
                    "does not set segment_len_bytes"
                }
            ),
            SessionError::CompressUnsupported { engine } => write!(
                f,
                "compress(..) was supplied but the {} engine traverses uncompressed CSR and \
                 would ignore it (drop compress(..) or select a GCGT engine)",
                engine.name()
            ),
            SessionError::AsymmetricPull => write!(
                f,
                "DirectionMode::Pull requires symmetric adjacency (stored neighbours must be \
                 the in-neighbours); add .symmetrize(true) or use DirectionMode::Adaptive, \
                 which degrades to push on asymmetric graphs"
            ),
            SessionError::ZeroShards => write!(
                f,
                "a sharded session needs at least one device (shards(n) with n >= 1)"
            ),
            SessionError::CompressedInputConflict { what } => write!(
                f,
                "graph_compressed(..) supplies an already-encoded graph, which conflicts with \
                 {what} (preprocessing and encoding are fixed at encode time; drop one of the two)"
            ),
            SessionError::CorruptGraph(e) => {
                write!(f, "pre-encoded graph failed structural validation: {e}")
            }
            SessionError::Oom(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<OomError> for SessionError {
    fn from(e: OomError) -> Self {
        SessionError::Oom(e)
    }
}

/// Typed builder for [`Session`] — see the crate docs for the full shape.
#[derive(Clone, Debug, Default)]
pub struct SessionBuilder {
    graph: Option<Arc<Csr>>,
    compressed: Option<CgrGraph>,
    symmetrize: bool,
    reorder: Option<Reordering>,
    compress: Option<CgrConfig>,
    compress_auto: bool,
    device: Option<DeviceConfig>,
    engine: Option<EngineKind>,
    pcie: Option<PcieConfig>,
    memory_budget: Option<usize>,
    ooc: Option<OocConfig>,
    direction: Option<DirectionMode>,
    shards: Option<usize>,
    interconnect: Option<InterconnectConfig>,
    observer: Option<ObserverHandle>,
    fault_plan: Option<FaultPlan>,
}

impl SessionBuilder {
    /// The input graph (owned).
    #[must_use]
    pub fn graph(mut self, graph: Csr) -> Self {
        self.graph = Some(Arc::new(graph));
        self
    }

    /// The input graph, shared — lets many sessions (e.g. one per engine in
    /// a comparison sweep) reuse one in-memory copy.
    #[must_use]
    pub fn graph_shared(mut self, graph: Arc<Csr>) -> Self {
        self.graph = Some(graph);
        self
    }

    /// An **already-encoded** graph as the session input — the instant-
    /// restart path: load a GCGR v2 file once
    /// ([`gcgt_cgr::CgrGraph::from_bytes`], `io::load`) and skip the
    /// encode entirely; with a zero-copy load, every worker of a serving
    /// pool sharing this session's [`PreparedGraph`] serves the one file
    /// buffer. The graph's `CgrConfig` stands in for
    /// [`SessionBuilder::compress`] (and must match the selected GCGT
    /// strategy's layout); preprocessing was fixed at encode time, so
    /// combining this with `graph(..)`, `compress(..)`,
    /// `symmetrize(true)` or `reorder(..)` is
    /// [`SessionError::CompressedInputConflict`].
    ///
    /// The session's query surface is CSR-centric (degrees, direction
    /// checks, baselines), so `prepare` decodes a CSR mirror from the
    /// compressed input — which requires the whole structure proven
    /// sound: a [`gcgt_cgr::ValidationMode::Deferred`] load is validated
    /// in full here (failures surface as [`SessionError::CorruptGraph`]).
    /// The exception is a *streaming* [`EngineKind::OutOfCore`] build,
    /// which traverses straight from the compressed payload and re-checks
    /// partitions lazily: corrupt regions survive the build (the mirror
    /// skips them) and every query touching one fails with a typed
    /// `CorruptGraph` error — sticky, never a panic — while queries that
    /// avoid it keep their fault-free answers.
    #[must_use]
    pub fn graph_compressed(mut self, cgr: CgrGraph) -> Self {
        self.compressed = Some(cgr);
        self
    }

    /// Symmetrize before anything else (required for meaningful connected
    /// components on directed input).
    #[must_use]
    pub fn symmetrize(mut self, yes: bool) -> Self {
        self.symmetrize = yes;
        self
    }

    /// Apply a node reordering (locality → compression rate). The session
    /// owns the id mapping: queries and results stay in the caller's
    /// original id space.
    #[must_use]
    pub fn reorder(mut self, reordering: Reordering) -> Self {
        self.reorder = Some(reordering);
        self
    }

    /// Explicit CGR encoding parameters (GCGT engines only). The layout
    /// must match the strategy — `build` rejects a segmented configuration
    /// for strategies below `Full` and vice versa. When omitted, the
    /// session derives `strategy.cgr_config(&CgrConfig::paper_default())`.
    #[must_use]
    pub fn compress(mut self, config: CgrConfig) -> Self {
        self.compress = Some(config);
        self
    }

    /// Autotune the CGR code for the prepared graph: after symmetrize and
    /// reorder, the session picks the VLC code via
    /// [`CgrConfig::autotune`] and derives the layout from the strategy,
    /// exactly as the default path does from
    /// [`CgrConfig::paper_default`]. An explicit [`SessionBuilder::compress`]
    /// or pre-encoded [`SessionBuilder::graph_compressed`] input takes
    /// precedence.
    #[must_use]
    pub fn compress_auto(mut self) -> Self {
        self.compress_auto = true;
        self
    }

    /// The simulated device (defaults to [`DeviceConfig::default`]).
    #[must_use]
    pub fn device(mut self, device: DeviceConfig) -> Self {
        self.device = Some(device);
        self
    }

    /// Which engine to drive (defaults to the full GCGT).
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = Some(engine);
        self
    }

    /// The frontier-expansion direction BFS levels use (defaults to
    /// [`DirectionMode::Push`], the paper's original behaviour).
    ///
    /// * `Push` — classic top-down expansion, bitwise identical to the
    ///   pre-direction API.
    /// * `Pull` — every level scans unvisited nodes' compressed adjacency
    ///   for frontier parents with early exit. Requires symmetric
    ///   adjacency; `build` returns [`SessionError::AsymmetricPull`]
    ///   otherwise (add [`SessionBuilder::symmetrize`]).
    /// * `Adaptive` — the Beamer/Ligra density heuristic picks per level
    ///   (pull when the frontier's out-degree sum exceeds
    ///   `num_edges / `[`PULL_ALPHA`]); on an asymmetric graph it degrades
    ///   to pure push, and on a graph where the heuristic never fires the
    ///   run is bitwise identical to `Push` — outputs and `RunStats` alike.
    #[must_use]
    pub fn direction(mut self, direction: DirectionMode) -> Self {
        self.direction = Some(direction);
        self
    }

    /// The host↔device link model used for upload accounting.
    #[must_use]
    pub fn pcie(mut self, pcie: PcieConfig) -> Self {
        self.pcie = Some(pcie);
        self
    }

    /// Caps how many device bytes this session may occupy (defaults to the
    /// device's full capacity; the effective budget is the smaller of the
    /// two). In-core engines treat it as a tighter OOM wall; with
    /// [`EngineKind::OutOfCore`] a graph that exceeds it still builds and
    /// **streams** compressed partitions within the budget instead.
    #[must_use]
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Streaming parameters of the out-of-core engine (chunk granularity,
    /// transfer/decode overlap). Only meaningful with
    /// [`EngineKind::OutOfCore`]; defaults to [`OocConfig::default`].
    #[must_use]
    pub fn ooc_config(mut self, config: OocConfig) -> Self {
        self.ooc = Some(config);
        self
    }

    /// Shards the selected engine across `devices` modeled GPUs
    /// (wrapping whatever [`SessionBuilder::engine`] picked into
    /// [`EngineKind::Sharded`]). Outputs stay bitwise identical to the
    /// single-device run; the per-step frontier exchange is charged into
    /// `RunStats::{exchange_ms, boundary_nodes, sync_steps}`. With
    /// [`EngineKind::OutOfCore`], [`SessionBuilder::memory_budget`] becomes
    /// the **per-device** budget and the aggregate residency is verified
    /// against device capacity. `build` returns
    /// [`SessionError::ZeroShards`] when `devices` is zero.
    #[must_use]
    pub fn shards(mut self, devices: usize) -> Self {
        self.shards = Some(devices);
        self
    }

    /// The device↔device link model of a sharded session's frontier
    /// exchange (defaults to [`InterconnectConfig::nvlink`]). Only
    /// meaningful with [`SessionBuilder::shards`] /
    /// [`EngineKind::Sharded`].
    #[must_use]
    pub fn interconnect(mut self, link: InterconnectConfig) -> Self {
        self.interconnect = Some(link);
        self
    }

    /// Installs an observer on every device this session (or the serving
    /// pool sharing its [`PreparedGraph`]) derives: kernel launches,
    /// per-level spans, allocation changes, partition-cache and shard-
    /// exchange activity, and the serving timeline all report to it, with
    /// **modeled** timestamps. Observation never changes any reported
    /// number — outputs, [`RunStats`] and serving aggregates are bitwise
    /// identical with and without one. See `gcgt_simt::obs` for the
    /// ready-made sinks ([`gcgt_simt::obs::TraceRecorder`],
    /// [`gcgt_simt::obs::MetricsRegistry`]).
    #[must_use]
    pub fn observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Installs a deterministic fault plan ([`gcgt_simt::chaos`]) on every
    /// device this session (or the serving pool sharing its
    /// [`PreparedGraph`]) derives: transient alloc, PCIe-transfer and
    /// shard-exchange faults are injected and recovered with modeled
    /// backoff (visible in `RunStats::{faults_injected, retries,
    /// backoff_ms}` and the chaos trace category), and per-query faults
    /// surface as typed errors from a serving pool. The plan activates
    /// *after* the one-time graph upload — preparation itself is
    /// fault-free by construction. Installing [`FaultPlan::empty`] (or
    /// never calling this) leaves every output, statistic and trace
    /// bitwise identical to a chaos-free build.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Runs preprocessing + encoding, verifies device capacity, and returns
    /// the ready single-worker session (an [`Arc`]-wrapped
    /// [`PreparedGraph`] underneath — see [`SessionBuilder::prepare`]).
    pub fn build(self) -> Result<Session, SessionError> {
        Ok(Session {
            prepared: Arc::new(self.prepare()?),
        })
    }

    /// Runs preprocessing + encoding, verifies device capacity, and returns
    /// the immutable build product itself. Wrap it in an `Arc` to share it
    /// between a [`Session`], [`Executor`]s, or a `gcgt-serve` worker pool
    /// — [`PreparedGraph`] is `Send + Sync` and never mutated after this
    /// point.
    pub fn prepare(self) -> Result<PreparedGraph, SessionError> {
        // --- pre-encoded input (the GCGR v2 instant-restart path) ---
        if self.compressed.is_some() {
            let conflict = |what| Err(SessionError::CompressedInputConflict { what });
            if self.graph.is_some() {
                return conflict("graph(..)");
            }
            if self.compress.is_some() {
                return conflict("compress(..)");
            }
            if self.symmetrize {
                return conflict("symmetrize(true)");
            }
            if self.reorder.is_some() {
                return conflict("reorder(..)");
            }
        }
        let mut kind = self.engine.unwrap_or(EngineKind::Gcgt(Strategy::Full));
        if let Some(devices) = self.shards {
            kind = kind.sharded(devices);
        }
        if let EngineKind::Sharded { devices, .. } = kind {
            if devices == 0 {
                return Err(SessionError::ZeroShards);
            }
        }
        // --- input + CSR mirror ---
        // The mirror decodes every adjacency, so a deferred-validation load
        // is normally proven in full first (a no-op for eager loads and
        // fresh encodes). The one engine that honors the deferred contract
        // end to end is the non-sharded out-of-core streamer: it traverses
        // straight from the compressed payload and re-validates partitions
        // lazily at first touch, so a corrupt region may stay encoded —
        // the mirror simply skips it and the touching query fails with a
        // typed `CorruptGraph` instead of the build. If that build later
        // turns out not to stream (everything fits → in-core decode of the
        // full payload), the recorded corruption fails it below.
        let lazy_ooc = matches!(kind, EngineKind::OutOfCore { .. });
        let mut mirror_corrupt: Option<String> = None;
        let input = match &self.compressed {
            Some(cgr) if lazy_ooc => {
                let (mirror, corrupt) = gcgt_cgr::decode::decode_all_validated(cgr);
                mirror_corrupt = corrupt;
                Arc::new(mirror)
            }
            Some(cgr) => {
                cgr.ensure_validated_all()
                    .map_err(SessionError::CorruptGraph)?;
                Arc::new(gcgt_cgr::decode::decode_all(cgr))
            }
            None => self.graph.clone().ok_or(SessionError::MissingGraph)?,
        };
        if input.num_nodes() == 0 {
            return Err(SessionError::EmptyGraph);
        }
        // A degraded mirror cannot prove symmetry, so only the default
        // push schedule (which never consults it) is safe to resolve.
        if let Some(msg) = &mirror_corrupt {
            if !matches!(self.direction.unwrap_or_default(), DirectionMode::Push) {
                return Err(SessionError::CorruptGraph(msg.clone()));
            }
        }
        // Everything structural (encoding, footprints, capacity) keys off
        // the engine running inside each shard; sharding only adds
        // placement and exchange accounting on top.
        let base = kind.inner_kind();
        let device_config = self.device.unwrap_or_default();
        let pcie = self.pcie.unwrap_or_default();

        // --- preprocessing (the prepared graph owns the id mapping) ---
        let symmetrized: Arc<Csr> = if self.symmetrize {
            Arc::new(input.symmetrized())
        } else {
            input
        };
        let (graph, perm) = match self.reorder {
            Some(method) => {
                let perm = method.compute(&symmetrized);
                (Arc::new(symmetrized.permuted(&perm)), Some(perm))
            }
            None => (symmetrized, None),
        };

        // --- direction resolution (pull needs in-neighbours = stored
        // adjacency, i.e. a symmetric graph; checked on the preprocessed
        // graph, and only when a non-push direction was asked for) ---
        let direction = match self.direction.unwrap_or_default() {
            DirectionMode::Push => DirectionMode::Push,
            requested => {
                if graph.is_symmetric() {
                    requested
                } else {
                    match requested {
                        DirectionMode::Pull => return Err(SessionError::AsymmetricPull),
                        // Adaptive means "the best *correct* schedule":
                        // without symmetric adjacency that is pure push.
                        _ => DirectionMode::Push,
                    }
                }
            }
        };

        // --- encoding + footprint ---
        let (cgr, footprint, structure) = match base {
            EngineKind::Gcgt(strategy) | EngineKind::OutOfCore { inner: strategy } => {
                // A pre-encoded graph skips the encode; its baked-in config
                // faces the same layout check an explicit compress(..) does.
                let cgr = match self.compressed {
                    Some(cgr) => {
                        let config_segmented = cgr.config().segment_len_bytes.is_some();
                        if config_segmented != strategy.needs_segmented_layout() {
                            return Err(SessionError::LayoutMismatch {
                                strategy,
                                config_segmented,
                            });
                        }
                        cgr
                    }
                    None => {
                        let config = match self.compress {
                            Some(config) => {
                                let config_segmented = config.segment_len_bytes.is_some();
                                if config_segmented != strategy.needs_segmented_layout() {
                                    return Err(SessionError::LayoutMismatch {
                                        strategy,
                                        config_segmented,
                                    });
                                }
                                config
                            }
                            None if self.compress_auto => {
                                strategy.cgr_config(&CgrConfig::autotune(&graph))
                            }
                            None => strategy.cgr_config(&CgrConfig::paper_default()),
                        };
                        CgrGraph::encode(&graph, &config)
                    }
                };
                let footprint = memory::gcgt_footprint(&cgr);
                let structure = memory::gcgt_structure_bytes(&cgr);
                (Some(cgr), footprint, structure)
            }
            EngineKind::GpuCsr | EngineKind::Gunrock => {
                if self.compress.is_some() || self.compressed.is_some() {
                    return Err(SessionError::CompressUnsupported { engine: kind });
                }
                let (footprint, structure) = match base {
                    EngineKind::GpuCsr => (
                        memory::csr_footprint(&graph),
                        memory::csr_structure_bytes(&graph),
                    ),
                    _ => (
                        memory::gunrock_footprint(&graph),
                        memory::gunrock_structure_bytes(&graph),
                    ),
                };
                (None, footprint, structure)
            }
            EngineKind::Sharded { .. } => unreachable!("inner_kind is never sharded"),
        };

        // --- capacity / budget check (the OOM bars of Figures 8 and 15) ---
        // The effective ceiling is the device capacity, tightened by an
        // explicit memory budget when one was given.
        let budget = self
            .memory_budget
            .unwrap_or(device_config.mem_capacity)
            .min(device_config.mem_capacity);
        let fits = {
            let mut probe = Device::new(DeviceConfig {
                mem_capacity: budget,
                ..device_config
            });
            probe.alloc(footprint)
        };
        let ooc = match (base, fits) {
            // Everything fits: out-of-core sessions degenerate to the
            // in-core engine and behave identically to `Gcgt(inner)`.
            (_, Ok(())) => None,
            (EngineKind::OutOfCore { .. }, Err(_)) => {
                let cgr = cgr.as_ref().expect("OutOfCore always encodes");
                let plan = Self::plan_streaming(cgr, budget, self.ooc.unwrap_or_default())?;
                // Sharded streaming: `budget` is per device, but every
                // shard's scratch + cache must fit the one modeled memory
                // pool together (the cache faults unconditionally once
                // admitted, so this has to hold up front).
                if let EngineKind::Sharded { devices, .. } = kind {
                    let scratch = memory::traversal_buffers_bytes(cgr.num_nodes());
                    let aggregate = scratch + devices * plan.cache_budget;
                    if aggregate > device_config.mem_capacity {
                        return Err(SessionError::Oom(OomError {
                            requested: aggregate,
                            capacity: device_config.mem_capacity,
                        }));
                    }
                }
                Some(plan)
            }
            (_, Err(oom)) => return Err(SessionError::Oom(oom)),
        };
        // Corruption recorded by the degraded mirror is only survivable
        // when the session really streams (the lazy re-check fails the
        // touching query); an in-core run would decode the corrupt payload
        // unchecked, so it keeps the eager-validation contract.
        if let Some(msg) = mirror_corrupt {
            if ooc.is_none() {
                return Err(SessionError::CorruptGraph(msg));
            }
        }

        // --- shard placement (balanced over the bytes the inner engine
        // actually keeps resident: compressed for GCGT, CSR otherwise) ---
        let shard = match kind {
            EngineKind::Sharded { devices, .. } => Some(ShardPlanData {
                plan: match &cgr {
                    Some(cgr) => ShardPlan::build(cgr, devices),
                    None => ShardPlan::build_csr(&graph, devices),
                },
                interconnect: self.interconnect.unwrap_or_default(),
            }),
            _ => None,
        };

        Ok(PreparedGraph {
            kind,
            device_config,
            pcie,
            graph,
            cgr,
            perm,
            footprint,
            structure,
            budget,
            ooc,
            shard,
            direction,
            observer: self.observer,
            fault_plan: self.fault_plan,
        })
    }

    /// Partitions the compressed graph for streaming under `budget` device
    /// bytes: per-query scratch stays resident, and the rest is the
    /// partition cache, split into ~quarter-cache partitions so the LRU has
    /// room to rotate. Fails when even one partition plus scratch cannot
    /// fit.
    fn plan_streaming(
        cgr: &CgrGraph,
        budget: usize,
        config: OocConfig,
    ) -> Result<OocPlan, SessionError> {
        let scratch = memory::traversal_buffers_bytes(cgr.num_nodes());
        let cache_budget = match budget.checked_sub(scratch) {
            Some(bytes) if bytes > 0 => bytes,
            _ => {
                return Err(SessionError::Oom(OomError {
                    requested: scratch + 1,
                    capacity: budget,
                }))
            }
        };
        let target = (cache_budget / 4).max(1);
        let parts = PartitionMap::build(cgr, target);
        if parts.max_partition_bytes() > cache_budget {
            return Err(SessionError::Oom(OomError {
                requested: scratch + parts.max_partition_bytes(),
                capacity: budget,
            }));
        }
        Ok(OocPlan {
            parts,
            cache_budget,
            config,
        })
    }
}

/// The streaming plan of an out-of-core prepared graph whose structure does
/// not fit: computed once at build, instantiated as an [`OocEngine`] (with
/// a private partition cache) per query or worker.
#[derive(Clone, Debug)]
struct OocPlan {
    parts: PartitionMap,
    cache_budget: usize,
    config: OocConfig,
}

/// One application run: the app's output plus cost accounting.
#[derive(Clone, Debug)]
pub struct Run<T> {
    /// The application result (id-mapped back to the caller's space when
    /// the session reordered).
    pub output: T,
    /// Simulated-device statistics of this run.
    pub stats: RunStats,
    /// Host→device upload time paid to make the graph resident. Zero for
    /// runs through an [`Executor`], whose worker paid the upload once at
    /// construction ([`Executor::upload_ms`]).
    pub upload_ms: f64,
    /// The device configuration the run executed under — kept so
    /// [`Run::explain`] can weight the instruction-class breakdown without
    /// the caller re-supplying it.
    device_config: DeviceConfig,
}

impl<T> Run<T> {
    /// Upload plus simulated execution plus streamed partition transfers
    /// plus sharded frontier exchange, milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.upload_ms + self.stats.est_ms + self.stats.transfer_ms + self.stats.exchange_ms
    }

    /// A human-readable latency decomposition of this run — the per-class
    /// instruction breakdown and the est/transfer/exchange time split of
    /// [`RunStats::explain`], plus the upload this run paid. Deterministic
    /// for a deterministic run.
    pub fn explain(&self) -> String {
        let mut out = self.stats.explain(&self.device_config);
        out.push_str(&format!("{:<12} {:>14.6} ms\n", "upload", self.upload_ms));
        out.push_str(&format!("{:<12} {:>14.6} ms\n", "total", self.total_ms()));
        out
    }
}

/// A batch of runs sharing **one** device residency.
#[derive(Clone, Debug)]
pub struct BatchRun<T> {
    /// Per-query outputs, in submission order.
    pub outputs: Vec<T>,
    /// Per-query device statistics (each covering only its query).
    pub per_query: Vec<RunStats>,
    /// Aggregate device statistics of the whole batch.
    pub stats: RunStats,
    /// Graph uploads paid (always 1 — that is the point of batching).
    pub uploads: u32,
    /// Host→device upload time paid, once.
    pub upload_ms: f64,
}

impl<T> BatchRun<T> {
    /// Upload plus simulated execution plus streamed partition transfers
    /// plus sharded frontier exchange of the whole batch, milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.upload_ms + self.stats.est_ms + self.stats.transfer_ms + self.stats.exchange_ms
    }

    /// Mean simulated latency per query (excluding the shared upload).
    pub fn mean_query_ms(&self) -> f64 {
        if self.per_query.is_empty() {
            0.0
        } else {
            self.per_query.iter().map(|s| s.est_ms).sum::<f64>() / self.per_query.len() as f64
        }
    }
}

/// Everything a traversal needs, computed once and never mutated again:
/// the preprocessed graph, the encoded compressed structure, the verified
/// capacity/budget plan and the runtime-selected engine kind.
///
/// `PreparedGraph` is `Send + Sync` by construction — it holds only plain
/// data — so one `Arc<PreparedGraph>` can back any number of concurrent
/// consumers: a single-worker [`Session`], ad-hoc [`Executor`]s, or the
/// `gcgt-serve` worker pool. All *mutable* traversal state (the simulated
/// device, per-query scratch, the out-of-core partition cache) lives in the
/// per-worker [`Executor`], never here.
#[derive(Debug)]
pub struct PreparedGraph {
    kind: EngineKind,
    device_config: DeviceConfig,
    pcie: PcieConfig,
    graph: Arc<Csr>,
    cgr: Option<CgrGraph>,
    perm: Option<Vec<NodeId>>,
    footprint: usize,
    structure: usize,
    budget: usize,
    ooc: Option<OocPlan>,
    shard: Option<ShardPlanData>,
    direction: DirectionMode,
    observer: Option<ObserverHandle>,
    fault_plan: Option<FaultPlan>,
}

/// The placement of a sharded prepared graph: computed once at build,
/// borrowed by one [`ShardEngine`] per query or worker.
#[derive(Clone, Debug)]
struct ShardPlanData {
    plan: ShardPlan,
    interconnect: InterconnectConfig,
}

/// The runtime-selected engine, borrowing the prepared graph's structures.
/// All apps reach it as a `&dyn DynExpander`; this enum is the only place
/// in the workspace that matches over engine kinds.
enum EngineHolder<'s> {
    Gcgt(GcgtEngine<'s>),
    GpuCsr(GpuCsrEngine<'s>),
    Gunrock(GunrockEngine<'s>),
    Ooc(OocEngine<'s>),
    Sharded(ShardEngine<'s>),
}

impl EngineHolder<'_> {
    fn as_dyn(&self) -> &dyn DynExpander {
        match self {
            EngineHolder::Gcgt(e) => e,
            EngineHolder::GpuCsr(e) => e,
            EngineHolder::Gunrock(e) => e,
            EngineHolder::Ooc(e) => e,
            EngineHolder::Sharded(e) => e,
        }
    }
}

impl PreparedGraph {
    /// The engine kind this prepared graph drives.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The **effective** frontier-expansion direction: what the builder
    /// requested, with `Adaptive` degraded to `Push` when the preprocessed
    /// graph turned out asymmetric.
    pub fn direction(&self) -> DirectionMode {
        self.direction
    }

    /// The simulated device configuration every worker derives its device
    /// from.
    pub fn device_config(&self) -> &DeviceConfig {
        &self.device_config
    }

    /// The observer installed at build time
    /// ([`SessionBuilder::observer`]), if any — attached to every device
    /// this prepared graph derives, and used by the serving pool to replay
    /// its deterministic dispatch timeline.
    pub fn observer(&self) -> Option<&ObserverHandle> {
        self.observer.as_ref()
    }

    /// The fault plan installed at build time
    /// ([`SessionBuilder::fault_plan`]), if any — activated on every
    /// worker device after its one-time upload.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_plan
    }

    /// The preprocessed graph the engine traverses (post symmetrize /
    /// reorder — internal id space).
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// Node count (identical in original and internal id spaces).
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The id mapping applied by reordering (`perm[original] = internal`),
    /// when one was requested.
    pub fn permutation(&self) -> Option<&[NodeId]> {
        self.perm.as_deref()
    }

    /// The encoded compressed graph (GCGT engines only).
    pub fn cgr(&self) -> Option<&CgrGraph> {
        self.cgr.as_ref()
    }

    /// The precomputed VLC decode table every traversal of this prepared
    /// graph decodes through (GCGT engines only): built once per process
    /// per code ([`gcgt_cgr::DecodeTable`]'s shared cache) and handed
    /// around by `Arc` — a serving pool's workers all probe the same
    /// allocation. `None` for the uncompressed CSR engines, which have
    /// nothing to decode.
    pub fn decode_table(&self) -> Option<&gcgt_cgr::DecodeTable> {
        self.cgr.as_ref().map(|cgr| cgr.table())
    }

    /// Resident bytes of the engine's structure plus traversal buffers —
    /// what an in-core run needs at its peak. A streaming session's actual
    /// residency is bounded by [`PreparedGraph::memory_budget`] instead.
    pub fn footprint(&self) -> usize {
        self.footprint
    }

    /// The query-invariant structure bytes (graph representation without
    /// per-query scratch) — the device allocation level between batched
    /// queries. Zero for a streaming session (partitions come and go).
    pub fn structure_bytes(&self) -> usize {
        if self.is_streaming() {
            0
        } else {
            self.structure
        }
    }

    /// The effective device-byte ceiling: the explicit
    /// [`SessionBuilder::memory_budget`] tightened to the device capacity.
    pub fn memory_budget(&self) -> usize {
        self.budget
    }

    /// Whether runs stream compressed partitions over the link (the graph
    /// exceeded the budget) instead of residing wholly on the device.
    pub fn is_streaming(&self) -> bool {
        self.ooc.is_some()
    }

    /// The number of compressed partitions a streaming session rotates
    /// through (`None` when the graph fits in-core).
    pub fn num_partitions(&self) -> Option<usize> {
        self.ooc.as_ref().map(|plan| plan.parts.len())
    }

    /// How many modeled devices a sharded session places the graph onto
    /// (`None` for single-device sessions).
    pub fn num_shards(&self) -> Option<usize> {
        self.shard.as_ref().map(|s| s.plan.devices())
    }

    /// The shard placement of a sharded session (`None` for single-device
    /// sessions).
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.shard.as_ref().map(|s| &s.plan)
    }

    /// The device↔device link a sharded session exchanges frontiers over
    /// (`None` for single-device sessions).
    pub fn interconnect(&self) -> Option<InterconnectConfig> {
        self.shard.as_ref().map(|s| s.interconnect)
    }

    /// Compression rate of the resident structure relative to a 32-bit
    /// edge list (GCGT engines; CSR engines report 1.0).
    pub fn compression_rate(&self) -> f64 {
        match &self.cgr {
            Some(cgr) => cgr.compression_rate(),
            None => 1.0,
        }
    }

    /// Host→device time to make the structure resident, from the prepared
    /// graph's PCIe model — paid once per device residency (one `run`, one
    /// `run_batch`, or one pool worker). A streaming session uploads
    /// nothing up front (transfers happen during the run and appear in
    /// [`RunStats::transfer_ms`]), so this is 0.
    pub fn upload_ms(&self) -> f64 {
        if self.is_streaming() {
            0.0
        } else {
            self.pcie.transfer_ms(self.footprint, 1)
        }
    }

    /// Instantiates the runtime-selected engine over this immutable
    /// structure. Cheap: engines borrow the graph; only per-engine mutable
    /// state (the out-of-core partition cache) is constructed fresh — which
    /// is exactly why engines are built per query or per worker, never
    /// shared.
    fn engine(&self) -> EngineHolder<'_> {
        match self.kind {
            EngineKind::Gcgt(strategy) => EngineHolder::Gcgt(
                GcgtEngine::new(
                    self.cgr.as_ref().expect("GCGT session always encodes"),
                    self.device_config,
                    strategy,
                )
                .expect("capacity verified at build time")
                .with_direction(self.direction),
            ),
            EngineKind::GpuCsr => EngineHolder::GpuCsr(
                GpuCsrEngine::new(&self.graph, self.device_config)
                    .expect("capacity verified at build time")
                    .with_direction(self.direction),
            ),
            EngineKind::Gunrock => EngineHolder::Gunrock(
                GunrockEngine::new(&self.graph, self.device_config)
                    .expect("capacity verified at build time")
                    .with_direction(self.direction),
            ),
            EngineKind::OutOfCore { inner } => {
                let cgr = self.cgr.as_ref().expect("OutOfCore session always encodes");
                match &self.ooc {
                    // The graph fits: identical to the in-core engine.
                    None => EngineHolder::Gcgt(
                        GcgtEngine::new(cgr, self.device_config, inner)
                            .expect("capacity verified at build time")
                            .with_direction(self.direction),
                    ),
                    Some(plan) => EngineHolder::Ooc(
                        OocEngine::new(
                            cgr,
                            &plan.parts,
                            self.device_config,
                            inner,
                            self.pcie,
                            plan.config,
                            plan.cache_budget,
                        )
                        .expect("budget verified at build time")
                        .with_direction(self.direction),
                    ),
                }
            }
            EngineKind::Sharded { inner, .. } => {
                let sharding = self.shard.as_ref().expect("sharded session always plans");
                let engine = match inner {
                    ShardInner::Gcgt(strategy) => ShardEngine::gcgt(
                        self.cgr.as_ref().expect("GCGT shards always encode"),
                        &self.graph,
                        &sharding.plan,
                        sharding.interconnect,
                        self.device_config,
                        strategy,
                    )
                    .expect("capacity verified at build time"),
                    ShardInner::GpuCsr => ShardEngine::gpu_csr(
                        &self.graph,
                        &sharding.plan,
                        sharding.interconnect,
                        self.device_config,
                    )
                    .expect("capacity verified at build time"),
                    ShardInner::Gunrock => ShardEngine::gunrock(
                        &self.graph,
                        &sharding.plan,
                        sharding.interconnect,
                        self.device_config,
                    )
                    .expect("capacity verified at build time"),
                    ShardInner::OutOfCore(strategy) => {
                        let cgr = self.cgr.as_ref().expect("OutOfCore shards always encode");
                        match &self.ooc {
                            // The graph fits every device: each shard runs
                            // in-core; exchange accounting still applies.
                            None => ShardEngine::gcgt(
                                cgr,
                                &self.graph,
                                &sharding.plan,
                                sharding.interconnect,
                                self.device_config,
                                strategy,
                            )
                            .expect("capacity verified at build time"),
                            Some(plan) => ShardEngine::out_of_core(ShardOocParams {
                                cgr,
                                graph: &self.graph,
                                plan: &sharding.plan,
                                parts: &plan.parts,
                                interconnect: sharding.interconnect,
                                device_config: self.device_config,
                                strategy,
                                pcie: self.pcie,
                                config: plan.config,
                                cache_budget: plan.cache_budget,
                            })
                            .expect("budget verified at build time"),
                        }
                    }
                };
                EngineHolder::Sharded(engine.with_direction(self.direction))
            }
        }
    }

    fn remap<A: Algorithm>(&self, algo: A) -> A {
        match &self.perm {
            Some(perm) => algo.remap_sources(perm),
            None => algo,
        }
    }

    fn unpermute<A: Algorithm>(&self, output: A::Output) -> A::Output {
        match &self.perm {
            Some(perm) => A::unpermute(output, perm),
            None => output,
        }
    }

    /// Runs one application on a fresh single-query worker: uploads the
    /// structure, executes, maps results back to the caller's id space.
    ///
    /// # Panics
    /// Panics if a node-id parameter (BFS/BC source) is out of range —
    /// range-check against [`PreparedGraph::num_nodes`] for untrusted
    /// input.
    pub fn run<A: Algorithm>(&self, algo: A) -> Run<A::Output> {
        let mut worker = Executor::new(self);
        let mut run = worker.run(algo);
        run.upload_ms = self.upload_ms();
        run
    }

    /// Runs many queries against **one** device residency: the structure is
    /// uploaded and allocated once, and every query accounts on the same
    /// device — the serving-scale amortization (compare
    /// `batch.total_ms()` with the sum of individual `run(..).total_ms()`).
    /// Out-of-core batches also share one partition cache, so later queries
    /// hit partitions earlier ones faulted.
    pub fn run_batch<A: Algorithm>(&self, queries: &[A]) -> BatchRun<A::Output> {
        let holder = self.engine();
        let engine = holder.as_dyn();
        let mut device = engine.dyn_new_device();
        if let Some(observer) = &self.observer {
            device.set_observer(observer.clone());
        }
        // The plan activates after the upload — graph preparation is
        // fault-free by construction, queries are the chaos surface.
        if let Some(plan) = self.fault_plan {
            device.set_fault_plan(plan);
        }
        let mut outputs = Vec::with_capacity(queries.len());
        let mut per_query = Vec::with_capacity(queries.len());
        for query in queries {
            let before = device.stats();
            let output = self.remap(query.clone()).execute(engine, &mut device);
            per_query.push(device.stats().since(&before));
            outputs.push(self.unpermute::<A>(output));
        }
        BatchRun {
            outputs,
            per_query,
            stats: device.stats(),
            uploads: 1,
            upload_ms: self.upload_ms(),
        }
    }
}

/// Per-worker execution state over a shared [`PreparedGraph`]: a simulated
/// device with the structure resident, created once per worker, plus
/// per-query engine state instantiated fresh for every query.
///
/// The execution contract that makes concurrent serving provable:
///
/// * each query runs on [`Device::query_view`] — the worker's residency
///   with zeroed counters — so its [`RunStats`] are **bitwise identical**
///   to the same query through a serial [`PreparedGraph::run`], no matter
///   which worker runs it or what ran before;
/// * each query gets a fresh engine (for out-of-core, a fresh cold
///   partition cache over the shared partition map), and the engine's
///   residency is released when the query ends — the device returns to the
///   post-upload [`Executor::baseline`] between queries, which the
///   alloc-audit suite pins.
pub struct Executor<'p> {
    prepared: &'p PreparedGraph,
    device: Device,
    baseline: usize,
    served: u64,
    busy_ms: f64,
}

impl<'p> Executor<'p> {
    /// Spawns a worker over `prepared`: derives its own device from the
    /// shared [`DeviceConfig`] and makes the structure resident (paying
    /// [`Executor::upload_ms`] once).
    pub fn new(prepared: &'p PreparedGraph) -> Self {
        let holder = prepared.engine();
        let mut device = holder.as_dyn().dyn_new_device();
        if let Some(observer) = prepared.observer() {
            device.set_observer(observer.clone());
        }
        // Install the fault plan only after the upload: worker spawn is
        // fault-free by construction, so a typed chaos failure can only
        // unwind out of a query (where the serving pool catches it), never
        // out of pool construction.
        if let Some(plan) = prepared.fault_plan() {
            device.set_fault_plan(plan);
        }
        let baseline = device.allocated();
        Self {
            prepared,
            device,
            baseline,
            served: 0,
            busy_ms: 0.0,
        }
    }

    /// The shared structure this worker executes over.
    pub fn prepared(&self) -> &'p PreparedGraph {
        self.prepared
    }

    /// The post-upload allocation level: the query-invariant structure
    /// bytes this worker keeps resident for its whole life.
    pub fn baseline(&self) -> usize {
        self.baseline
    }

    /// Currently allocated bytes on this worker's device. Equals
    /// [`Executor::baseline`] between queries — per-query scratch and
    /// streamed partitions are released when each query ends.
    pub fn allocated(&self) -> usize {
        self.device.allocated()
    }

    /// Queries this worker has executed.
    pub fn queries_served(&self) -> u64 {
        self.served
    }

    /// Total simulated milliseconds this worker has spent executing
    /// (per-query `est_ms + transfer_ms + exchange_ms`, summed in service
    /// order).
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Host→device upload paid once at worker construction.
    pub fn upload_ms(&self) -> f64 {
        self.prepared.upload_ms()
    }

    /// Tags this worker's future trace events with a track (a Chrome-trace
    /// row id). The serving pool sets each query's submission index before
    /// running it, so exported execution traces are keyed by query — hence
    /// identical at any worker count — rather than by racing worker. No-op
    /// for reported statistics, with or without an observer.
    pub fn set_trace_track(&mut self, track: u64) {
        self.device.set_track(track);
    }

    /// Executes one query from the post-upload baseline. The returned
    /// statistics are bitwise identical to the same query through
    /// [`PreparedGraph::run`]; `upload_ms` is 0 because the worker paid the
    /// upload at construction.
    ///
    /// # Panics
    /// Panics if a node-id parameter (BFS/BC source) is out of range, and
    /// unwinds with a typed [`TypedFailure`] payload when the installed
    /// fault plan fails this query (injected per-query fault, exhausted
    /// retry budget, corrupt payload at first touch) — the serving pool
    /// catches both and maps them to per-query errors.
    pub fn run<A: Algorithm>(&mut self, algo: A) -> Run<A::Output> {
        let holder = self.prepared.engine();
        let engine = holder.as_dyn();
        let mut device = self.device.query_view();
        if device.inject_query_fault() {
            gcgt_simt::chaos::raise(TypedFailure::InjectedQueryFailure);
        }
        let output = self.prepared.remap(algo).execute(engine, &mut device);
        let stats = device.stats();
        // Release what the query held beyond the structure (streamed
        // partitions; scratch was already freed by the app) so the next
        // query starts from the same baseline this one did.
        engine.dyn_release_residency(&mut device);
        debug_assert_eq!(
            device.allocated(),
            self.baseline,
            "query left residency beyond the post-upload baseline"
        );
        self.device = device;
        self.served += 1;
        self.busy_ms += stats.est_ms + stats.transfer_ms + stats.exchange_ms;
        Run {
            output: self.prepared.unpermute::<A>(output),
            stats,
            upload_ms: 0.0,
            device_config: self.prepared.device_config,
        }
    }
}

/// A ready-to-run traversal session: a thin single-worker wrapper around an
/// [`Arc<PreparedGraph>`]. Cloning a session shares the underlying
/// structure; [`Session::prepared`] hands the `Arc` to concurrent consumers
/// (the `gcgt-serve` pool).
#[derive(Clone, Debug)]
pub struct Session {
    prepared: Arc<PreparedGraph>,
}

impl Session {
    /// Starts a builder.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The shared immutable build product backing this session.
    pub fn prepared(&self) -> Arc<PreparedGraph> {
        Arc::clone(&self.prepared)
    }

    /// A single-worker executor borrowing this session's structure (for
    /// callers that want explicit control over worker lifetime).
    pub fn executor(&self) -> Executor<'_> {
        Executor::new(&self.prepared)
    }

    /// The engine kind this session drives.
    pub fn kind(&self) -> EngineKind {
        self.prepared.kind()
    }

    /// The effective frontier-expansion direction — see
    /// [`PreparedGraph::direction`].
    pub fn direction(&self) -> DirectionMode {
        self.prepared.direction()
    }

    /// The simulated device configuration.
    pub fn device_config(&self) -> &DeviceConfig {
        self.prepared.device_config()
    }

    /// The preprocessed graph the engine traverses (post symmetrize /
    /// reorder — internal id space).
    pub fn graph(&self) -> &Csr {
        self.prepared.graph()
    }

    /// Node count (identical in original and internal id spaces).
    pub fn num_nodes(&self) -> usize {
        self.prepared.num_nodes()
    }

    /// The id mapping applied by reordering (`perm[original] = internal`),
    /// when one was requested.
    pub fn permutation(&self) -> Option<&[NodeId]> {
        self.prepared.permutation()
    }

    /// The encoded compressed graph (GCGT engines only).
    pub fn cgr(&self) -> Option<&CgrGraph> {
        self.prepared.cgr()
    }

    /// Resident bytes of the engine's structure plus traversal buffers —
    /// see [`PreparedGraph::footprint`].
    pub fn footprint(&self) -> usize {
        self.prepared.footprint()
    }

    /// The query-invariant structure bytes — see
    /// [`PreparedGraph::structure_bytes`].
    pub fn structure_bytes(&self) -> usize {
        self.prepared.structure_bytes()
    }

    /// The effective device-byte ceiling of this session.
    pub fn memory_budget(&self) -> usize {
        self.prepared.memory_budget()
    }

    /// Whether runs stream compressed partitions over the link.
    pub fn is_streaming(&self) -> bool {
        self.prepared.is_streaming()
    }

    /// The number of compressed partitions a streaming session rotates
    /// through (`None` when the graph fits in-core).
    pub fn num_partitions(&self) -> Option<usize> {
        self.prepared.num_partitions()
    }

    /// How many modeled devices a sharded session places the graph onto
    /// (`None` for single-device sessions).
    pub fn num_shards(&self) -> Option<usize> {
        self.prepared.num_shards()
    }

    /// The shard placement of a sharded session (`None` for single-device
    /// sessions).
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.prepared.shard_plan()
    }

    /// The device↔device link a sharded session exchanges frontiers over
    /// (`None` for single-device sessions).
    pub fn interconnect(&self) -> Option<InterconnectConfig> {
        self.prepared.interconnect()
    }

    /// Compression rate of the resident structure relative to a 32-bit
    /// edge list (GCGT engines; CSR engines report 1.0).
    pub fn compression_rate(&self) -> f64 {
        self.prepared.compression_rate()
    }

    /// Host→device time to make the structure resident — see
    /// [`PreparedGraph::upload_ms`].
    pub fn upload_ms(&self) -> f64 {
        self.prepared.upload_ms()
    }

    /// Runs one application — see [`PreparedGraph::run`].
    pub fn run<A: Algorithm>(&self, algo: A) -> Run<A::Output> {
        self.prepared.run(algo)
    }

    /// Runs many queries against one device residency — see
    /// [`PreparedGraph::run_batch`].
    pub fn run_batch<A: Algorithm>(&self, queries: &[A]) -> BatchRun<A::Output> {
        self.prepared.run_batch(queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcgt_graph::gen::toys;
    use gcgt_graph::refalgo;

    /// The kernel-side view of [`RunStats`]: exchange counters zeroed, so a
    /// sharded run can be compared bitwise against its serial oracle.
    fn sans_exchange(stats: RunStats) -> RunStats {
        RunStats {
            exchange_ms: 0.0,
            boundary_nodes: 0,
            sync_steps: 0,
            ..stats
        }
    }

    fn figure1_session(kind: EngineKind) -> Session {
        Session::builder()
            .graph(toys::figure1())
            .engine(kind)
            .build()
            .unwrap()
    }

    #[test]
    fn every_engine_kind_matches_the_oracle() {
        let want = refalgo::bfs(&toys::figure1(), 0);
        for kind in EngineKind::GPU_COMPARISON {
            let run = figure1_session(kind).run(Bfs::from(0));
            assert_eq!(run.output.depth, want.depth, "{}", kind.name());
        }
        for strategy in Strategy::LADDER {
            let run = figure1_session(EngineKind::Gcgt(strategy)).run(Bfs::from(0));
            assert_eq!(run.output.depth, want.depth, "{strategy:?}");
        }
    }

    #[test]
    fn prepared_graph_is_send_sync_and_shared_by_clones() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedGraph>();
        assert_send_sync::<Arc<PreparedGraph>>();
        assert_send_sync::<Session>();

        let session = figure1_session(EngineKind::Gcgt(Strategy::Full));
        let clone = session.clone();
        assert!(Arc::ptr_eq(&session.prepared(), &clone.prepared()));
    }

    #[test]
    fn decode_tables_are_built_once_and_shared_across_prepared_graphs() {
        // Two independent prepared graphs over the same VLC code probe the
        // SAME table allocation (the process-wide shared cache) — the serve
        // pool's workers therefore share it too. CSR engines carry none.
        let a = figure1_session(EngineKind::Gcgt(Strategy::Full));
        let b = Session::builder()
            .graph(toys::binary_tree(5))
            .engine(EngineKind::Gcgt(Strategy::Full))
            .build()
            .unwrap();
        let ta = a.prepared().cgr().unwrap().table_shared();
        let tb = b.prepared().cgr().unwrap().table_shared();
        assert!(Arc::ptr_eq(&ta, &tb), "one table per code per process");
        assert_eq!(
            ta.code(),
            gcgt_cgr::CgrConfig::paper_default().code,
            "paper-default sessions decode zeta3"
        );
        assert!(a.prepared().decode_table().is_some());
        let csr = figure1_session(EngineKind::GpuCsr);
        assert!(csr.prepared().decode_table().is_none());
    }

    #[test]
    fn executor_stats_are_bitwise_those_of_a_serial_run() {
        let g = gcgt_graph::gen::web_graph(&gcgt_graph::gen::WebParams::uk2002_like(700), 11);
        let session = Session::builder().graph(g).build().unwrap();
        let mut worker = session.executor();
        // History independence: interleave other queries, then re-ask.
        let first = worker.run(Bfs::from(3));
        let _ = worker.run(Bfs::from(0));
        let _ = worker.run(Pagerank::default());
        let again = worker.run(Bfs::from(3));
        assert_eq!(first.output, again.output);
        assert_eq!(first.stats, again.stats);
        // And identical to the serial session path.
        let serial = session.run(Bfs::from(3));
        assert_eq!(serial.output, first.output);
        assert_eq!(serial.stats, first.stats);
        assert_eq!(worker.queries_served(), 4);
        assert!(worker.busy_ms() > 0.0);
    }

    #[test]
    fn executor_returns_to_baseline_between_queries() {
        let session = figure1_session(EngineKind::Gcgt(Strategy::Full));
        let mut worker = session.executor();
        assert_eq!(worker.baseline(), session.structure_bytes());
        for source in [0u32, 3, 5] {
            let _ = worker.run(Bfs::from(source));
            assert_eq!(worker.allocated(), worker.baseline());
        }
    }

    #[test]
    fn streaming_executor_drops_partitions_between_queries() {
        let g = gcgt_graph::gen::web_graph(&gcgt_graph::gen::WebParams::uk2002_like(2_000), 5);
        let incore = Session::builder().graph(g.clone()).build().unwrap();
        let session = Session::builder()
            .graph(g)
            .memory_budget(incore.footprint() * 7 / 10)
            .engine(EngineKind::OutOfCore {
                inner: Strategy::Full,
            })
            .build()
            .unwrap();
        assert!(session.is_streaming());
        let mut worker = session.executor();
        assert_eq!(worker.baseline(), 0);
        let a = worker.run(Bfs::from(0));
        assert!(a.stats.partition_faults > 0);
        assert_eq!(worker.allocated(), 0, "partitions released at query end");
        // Cold cache each query: fault statistics repeat bitwise.
        let b = worker.run(Bfs::from(0));
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn missing_graph_is_rejected() {
        assert_eq!(
            Session::builder().build().unwrap_err(),
            SessionError::MissingGraph
        );
    }

    #[test]
    fn empty_graph_is_rejected() {
        let err = Session::builder()
            .graph(Csr::from_edges(0, &[]))
            .build()
            .unwrap_err();
        assert_eq!(err, SessionError::EmptyGraph);
    }

    #[test]
    fn layout_mismatch_is_rejected_not_panicking() {
        // paper_default is segmented; TwoPhase traverses the unsegmented
        // layout. The old API panicked here — the builder returns an error.
        let err = Session::builder()
            .graph(toys::figure1())
            .engine(EngineKind::Gcgt(Strategy::TwoPhase))
            .compress(CgrConfig::paper_default())
            .build()
            .unwrap_err();
        assert!(
            matches!(
                err,
                SessionError::LayoutMismatch {
                    strategy: Strategy::TwoPhase,
                    config_segmented: true,
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("cannot traverse"));
    }

    #[test]
    fn compress_with_csr_engines_is_rejected_not_ignored() {
        for kind in [EngineKind::GpuCsr, EngineKind::Gunrock] {
            let err = Session::builder()
                .graph(toys::figure1())
                .compress(CgrConfig::paper_default())
                .engine(kind)
                .build()
                .unwrap_err();
            assert_eq!(err, SessionError::CompressUnsupported { engine: kind });
            assert!(err.to_string().contains(kind.name()));
        }
    }

    #[test]
    fn oom_is_reported_with_sizes() {
        let device = DeviceConfig {
            mem_capacity: 16,
            ..DeviceConfig::default()
        };
        let err = Session::builder()
            .graph(toys::figure1())
            .device(device)
            .build()
            .unwrap_err();
        match err {
            SessionError::Oom(oom) => assert_eq!(oom.capacity, 16),
            other => panic!("expected Oom, got {other:?}"),
        }
    }

    #[test]
    fn reordered_session_answers_in_original_ids() {
        let g = toys::binary_tree(6);
        let want = refalgo::bfs(&g, 0);
        let session = Session::builder()
            .graph(g)
            .reorder(Reordering::DegSort)
            .build()
            .unwrap();
        assert!(session.permutation().is_some());
        let run = session.run(Bfs::from(0));
        assert_eq!(run.output.depth, want.depth);
    }

    #[test]
    fn out_of_core_streams_when_the_graph_does_not_fit() {
        let g = gcgt_graph::gen::web_graph(&gcgt_graph::gen::WebParams::uk2002_like(2_000), 5);
        let incore = Session::builder().graph(g.clone()).build().unwrap();
        let want = incore.run(Bfs::from(0));
        // A capacity below the in-core footprint: the plain GCGT engine
        // OOMs, the out-of-core engine builds and streams.
        let capacity = incore.footprint() * 7 / 10;
        let device = DeviceConfig::titan_v_scaled(capacity);
        let err = Session::builder()
            .graph(g.clone())
            .device(device)
            .build()
            .unwrap_err();
        assert!(matches!(err, SessionError::Oom(_)));

        let session = Session::builder()
            .graph(g)
            .device(device)
            .memory_budget(capacity)
            .engine(EngineKind::OutOfCore {
                inner: Strategy::Full,
            })
            .build()
            .unwrap();
        assert!(session.is_streaming());
        assert!(session.num_partitions().unwrap() > 1);
        assert_eq!(session.upload_ms(), 0.0);
        let run = session.run(Bfs::from(0));
        assert_eq!(run.output.depth, want.output.depth);
        assert!(run.stats.partition_faults >= 1);
        assert!(run.stats.partition_evictions >= 1);
        assert!(run.stats.transfer_ms > 0.0);
        assert!(run.total_ms() > run.stats.est_ms);
    }

    #[test]
    fn out_of_core_degenerates_to_in_core_when_it_fits() {
        let g = toys::grid(12, 12);
        let incore = Session::builder()
            .graph(g.clone())
            .engine(EngineKind::Gcgt(Strategy::Full))
            .build()
            .unwrap();
        let ooc = Session::builder()
            .graph(g)
            .engine(EngineKind::OutOfCore {
                inner: Strategy::Full,
            })
            .build()
            .unwrap();
        assert!(!ooc.is_streaming());
        assert_eq!(ooc.num_partitions(), None);
        let a = incore.run(Bfs::from(0));
        let b = ooc.run(Bfs::from(0));
        assert_eq!(a.output.depth, b.output.depth);
        assert_eq!(a.stats.est_ms.to_bits(), b.stats.est_ms.to_bits());
        assert_eq!(b.stats.partition_faults, 0);
        assert_eq!(b.stats.transfer_ms, 0.0);
        assert_eq!(a.upload_ms, b.upload_ms);
    }

    #[test]
    fn memory_budget_tightens_in_core_engines_too() {
        let g = toys::grid(12, 12);
        let footprint = Session::builder()
            .graph(g.clone())
            .build()
            .unwrap()
            .footprint();
        let err = Session::builder()
            .graph(g)
            .memory_budget(footprint - 1)
            .build()
            .unwrap_err();
        match err {
            SessionError::Oom(oom) => assert_eq!(oom.capacity, footprint - 1),
            other => panic!("expected Oom, got {other:?}"),
        }
    }

    #[test]
    fn hopeless_budget_is_rejected_not_panicking() {
        let g = toys::grid(12, 12);
        let err = Session::builder()
            .graph(g)
            .memory_budget(64) // smaller than even the per-query scratch
            .engine(EngineKind::OutOfCore {
                inner: Strategy::Full,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, SessionError::Oom(_)));
    }

    #[test]
    fn pull_on_an_asymmetric_graph_is_a_typed_error() {
        let err = Session::builder()
            .graph(toys::binary_tree(4)) // edges point away from the root
            .direction(DirectionMode::Pull)
            .build()
            .unwrap_err();
        assert_eq!(err, SessionError::AsymmetricPull);
        assert!(err.to_string().contains("symmetrize"), "{err}");
        // Symmetrizing fixes it, and the effective direction sticks.
        let session = Session::builder()
            .graph(toys::binary_tree(4))
            .symmetrize(true)
            .direction(DirectionMode::Pull)
            .build()
            .unwrap();
        assert_eq!(session.direction(), DirectionMode::Pull);
        let want = refalgo::bfs(&toys::binary_tree(4).symmetrized(), 0);
        assert_eq!(session.run(Bfs::from(0)).output.depth, want.depth);
    }

    #[test]
    fn adaptive_degrades_to_push_on_asymmetric_graphs() {
        let session = Session::builder()
            .graph(toys::binary_tree(4))
            .direction(DirectionMode::Adaptive)
            .build()
            .unwrap();
        assert_eq!(session.direction(), DirectionMode::Push);
        let run = session.run(Bfs::from(0));
        assert_eq!(
            run.output.depth,
            refalgo::bfs(&toys::binary_tree(4), 0).depth
        );
        assert_eq!(run.stats.pull_steps, 0);
    }

    /// A long (symmetric) path: every frontier is one node, so the adaptive
    /// heuristic never fires — and then an adaptive run must be **bitwise**
    /// a push run on every engine kind: outputs and `RunStats` alike.
    #[test]
    fn adaptive_is_bitwise_push_on_every_engine_kind_when_push_wins() {
        let n = 500usize;
        let edges: Vec<(NodeId, NodeId)> = (0..n as NodeId - 1)
            .flat_map(|i| [(i, i + 1), (i + 1, i)])
            .collect();
        let g = Arc::new(Csr::from_edges(n, &edges));
        let mut kinds = vec![
            EngineKind::Gcgt(Strategy::Full),
            EngineKind::Gcgt(Strategy::TwoPhase),
            EngineKind::GpuCsr,
            EngineKind::Gunrock,
        ];
        kinds.push(EngineKind::OutOfCore {
            inner: Strategy::Full,
        });
        for kind in kinds {
            let build = |direction: DirectionMode| {
                let mut b = Session::builder()
                    .graph_shared(Arc::clone(&g))
                    .engine(kind)
                    .direction(direction);
                if matches!(kind, EngineKind::OutOfCore { .. }) {
                    // Tight enough to really stream on both sides.
                    let incore = Session::builder()
                        .graph_shared(Arc::clone(&g))
                        .build()
                        .unwrap();
                    let scratch = incore.footprint() - incore.structure_bytes();
                    b = b.memory_budget(scratch + (incore.structure_bytes() / 4).max(1));
                }
                b.build().unwrap()
            };
            let push = build(DirectionMode::Push).run(Bfs::from(0));
            let adaptive = build(DirectionMode::Adaptive).run(Bfs::from(0));
            assert_eq!(push.output, adaptive.output, "{}", kind.name());
            assert_eq!(push.stats, adaptive.stats, "{}", kind.name());
            assert_eq!(adaptive.stats.pull_steps, 0, "{}", kind.name());
        }
    }

    /// The direction-optimization payoff, end to end through the session:
    /// on a low-diameter social graph the adaptive schedule answers
    /// identically while expanding strictly fewer edges than pure push —
    /// in-core and streaming out-of-core alike.
    #[test]
    fn adaptive_expands_fewer_edges_on_low_diameter_graphs() {
        let g = gcgt_graph::gen::social_graph(&gcgt_graph::gen::SocialParams::twitter_like(900), 7);
        for kind in [
            EngineKind::Gcgt(Strategy::Full),
            EngineKind::GpuCsr,
            EngineKind::OutOfCore {
                inner: Strategy::Full,
            },
        ] {
            let build = |direction: DirectionMode| {
                let mut b = Session::builder()
                    .graph(g.clone())
                    .symmetrize(true)
                    .engine(kind)
                    .direction(direction);
                if matches!(kind, EngineKind::OutOfCore { .. }) {
                    let incore = Session::builder()
                        .graph(g.clone())
                        .symmetrize(true)
                        .build()
                        .unwrap();
                    let scratch = incore.footprint() - incore.structure_bytes();
                    b = b.memory_budget(scratch + (incore.structure_bytes() / 3).max(1));
                }
                b.build().unwrap()
            };
            let push = build(DirectionMode::Push).run(Bfs::from(0));
            let adaptive = build(DirectionMode::Adaptive).run(Bfs::from(0));
            assert_eq!(push.output.depth, adaptive.output.depth, "{}", kind.name());
            assert!(adaptive.stats.pull_steps >= 1, "{}", kind.name());
            let push_total = push.stats.pushed_edges + push.stats.pulled_edges;
            let adaptive_total = adaptive.stats.pushed_edges + adaptive.stats.pulled_edges;
            assert!(
                adaptive_total < push_total,
                "{}: adaptive {adaptive_total} vs push {push_total}",
                kind.name()
            );
        }
    }

    #[test]
    fn batch_reuses_one_residency() {
        let session = Session::builder()
            .graph(toys::grid(12, 12))
            .build()
            .unwrap();
        let sources: Vec<Bfs> = (0..8).map(Bfs::from).collect();
        let batch = session.run_batch(&sources);
        assert_eq!(batch.uploads, 1);
        assert_eq!(batch.outputs.len(), 8);
        // One residency: allocated bytes equal a single run's, not 8×.
        let single = session.run(Bfs::from(0));
        assert_eq!(batch.stats.allocated_bytes, single.stats.allocated_bytes);
        // The batch total is cheaper than eight standalone uploads.
        let standalone: f64 = (0..8).map(|s| session.run(Bfs::from(s)).total_ms()).sum();
        assert!(batch.total_ms() < standalone);
    }

    #[test]
    fn sharded_sessions_answer_bitwise_serial_and_charge_exchange() {
        let g = gcgt_graph::gen::web_graph(&gcgt_graph::gen::WebParams::uk2002_like(700), 11);
        let serial = Session::builder().graph(g.clone()).build().unwrap();
        let want = serial.run(Bfs::from(0));
        for devices in [1usize, 2, 4] {
            let session = Session::builder()
                .graph(g.clone())
                .shards(devices)
                .build()
                .unwrap();
            assert_eq!(session.num_shards(), Some(devices));
            assert_eq!(session.shard_plan().unwrap().devices(), devices);
            assert_eq!(session.interconnect(), Some(InterconnectConfig::default()));
            let run = session.run(Bfs::from(0));
            // The kernel side never changes: traversal results and modeled
            // execution are bitwise the serial run at any device count —
            // only the separate exchange counters move.
            assert_eq!(run.output.depth, want.output.depth, "{devices} devices");
            assert_eq!(run.output.reached, want.output.reached);
            assert_eq!(run.output.levels, want.output.levels);
            assert_eq!(
                sans_exchange(run.stats),
                sans_exchange(want.stats),
                "{devices} devices"
            );
            assert_eq!(
                run.stats.est_ms.to_bits(),
                want.stats.est_ms.to_bits(),
                "{devices} devices"
            );
            if devices == 1 {
                assert_eq!(run.stats.exchange_ms, 0.0);
                assert_eq!(run.stats.boundary_nodes, 0);
                assert_eq!(run.stats.sync_steps, 0);
                assert_eq!(run.total_ms(), want.total_ms());
            } else {
                assert!(run.stats.exchange_ms > 0.0, "{devices} devices");
                assert!(run.stats.boundary_nodes > 0, "{devices} devices");
                assert!(run.stats.sync_steps > 0, "{devices} devices");
                // And the exchange is part of the bill.
                assert!(run.total_ms() > want.total_ms(), "{devices} devices");
            }
        }
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        let err = Session::builder()
            .graph(toys::figure1())
            .shards(0)
            .build()
            .unwrap_err();
        assert_eq!(err, SessionError::ZeroShards);
        assert!(err.to_string().contains("device"), "{err}");
    }

    #[test]
    fn sharded_kind_names_strategies_and_wrapping() {
        let kind = EngineKind::Gcgt(Strategy::Full).sharded(4);
        assert_eq!(kind.name(), "GCGT-Shard");
        assert_eq!(kind.strategy(), Some(Strategy::Full));
        assert_eq!(kind.inner_kind(), EngineKind::Gcgt(Strategy::Full));
        // Re-sharding only changes the device count.
        assert_eq!(
            kind.sharded(2),
            EngineKind::Sharded {
                inner: ShardInner::Gcgt(Strategy::Full),
                devices: 2
            }
        );
        let ooc = EngineKind::OutOfCore {
            inner: Strategy::TwoPhase,
        }
        .sharded(2);
        assert_eq!(ooc.name(), "GCGT-OOC-Shard");
        assert_eq!(ooc.strategy(), Some(Strategy::TwoPhase));
        assert_eq!(EngineKind::GpuCsr.sharded(2).name(), "GPUCSR-Shard");
        assert_eq!(EngineKind::Gunrock.sharded(2).name(), "Gunrock-Shard");
        assert_eq!(EngineKind::GpuCsr.sharded(2).strategy(), None);
    }

    #[test]
    fn sharding_composes_with_every_inner_engine_kind() {
        let g = toys::grid(12, 12);
        for kind in EngineKind::GPU_COMPARISON {
            let serial = Session::builder()
                .graph(g.clone())
                .engine(kind)
                .build()
                .unwrap()
                .run(Bfs::from(0));
            let sharded = Session::builder()
                .graph(g.clone())
                .engine(kind)
                .shards(3)
                .build()
                .unwrap()
                .run(Bfs::from(0));
            assert_eq!(serial.output.depth, sharded.output.depth, "{}", kind.name());
            assert_eq!(
                sans_exchange(serial.stats),
                sans_exchange(sharded.stats),
                "{}",
                kind.name()
            );
            assert_eq!(
                serial.stats.est_ms.to_bits(),
                sharded.stats.est_ms.to_bits(),
                "{}",
                kind.name()
            );
            assert!(sharded.stats.exchange_ms > 0.0, "{}", kind.name());
        }
    }

    #[test]
    fn sharded_executor_keeps_the_bitwise_serving_contract() {
        let g = gcgt_graph::gen::web_graph(&gcgt_graph::gen::WebParams::uk2002_like(500), 3);
        let session = Session::builder().graph(g).shards(4).build().unwrap();
        let mut worker = session.executor();
        let first = worker.run(Bfs::from(2));
        let second = worker.run(Bfs::from(0));
        let again = worker.run(Bfs::from(2));
        assert_eq!(first.output, again.output);
        assert_eq!(first.stats, again.stats);
        let serial = session.run(Bfs::from(2));
        assert_eq!(serial.stats, first.stats);
        // busy_ms bills the exchange on top of modeled execution.
        let est_sum = first.stats.est_ms + second.stats.est_ms + again.stats.est_ms;
        assert!(worker.busy_ms() > est_sum);
    }
}
