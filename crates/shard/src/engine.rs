//! The sharded traversal engine: owner-computes BSP over N modeled devices.
//!
//! [`ShardEngine`] implements the [`Expander`] contract, so every
//! application runs on a sharded deployment unmodified. Each kernel launch
//! is one bulk-synchronous step: every shard expands exactly the work nodes
//! it owns (the union across shards is the serial work list, each node
//! expanded once), then shards that discovered nodes owned elsewhere send
//! the destination a dense frontier bitmap over its owned range, all-to-all,
//! over the modeled [`InterconnectConfig`].
//!
//! # Cost attribution
//!
//! Sharding never changes decode work: the per-step union of per-shard
//! expansions is exactly the serial schedule, so the simulator executes the
//! reference warp schedule and `RunStats::est_ms` (cycles, launches,
//! tallies, memory, push/pull counters) is **bitwise identical at any shard
//! count** — the aggregate device work, which partitioning redistributes
//! but does not alter. What sharding *adds* — the per-step barrier and the
//! boundary-bitmap exchange — is charged host-side into the separate
//! [`gcgt_simt::RunStats`] fields `sync_steps`, `boundary_nodes` and
//! `exchange_ms`, the same separation the out-of-core engine uses for
//! streamed transfer time. Results stay comparable, overheads stay
//! attributable.

use gcgt_baselines::{GpuCsrEngine, GunrockEngine};
use gcgt_cgr::CgrGraph;
use gcgt_core::kernels::Sink;
use gcgt_core::{DirectionMode, Expander, Frontier, GcgtEngine, Strategy};
use gcgt_graph::{Csr, NodeId};
use gcgt_ooc::{OocConfig, OocEngine, PartitionMap};
use gcgt_simt::{Device, DeviceConfig, InterconnectConfig, OomError, PcieConfig, WarpSim};

use crate::plan::ShardPlan;

/// The engine running inside each shard of a sharded session — the `Copy`
/// selector the session layer embeds in `EngineKind::Sharded`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShardInner {
    /// Compressed GCGT traversal, in-core per device.
    Gcgt(Strategy),
    /// Compressed GCGT traversal streaming through a per-device memory
    /// budget (each shard runs its own partition cache).
    OutOfCore(Strategy),
    /// The uncompressed GPUCSR baseline.
    GpuCsr,
    /// The Gunrock-style uncompressed baseline.
    Gunrock,
}

/// Everything a sharded **streaming** engine needs — bundled because the
/// out-of-core constructor wires two layers of partitioning (the coarse
/// device placement and the fine streaming partitions) plus both link
/// models.
pub struct ShardOocParams<'g> {
    /// The compressed graph.
    pub cgr: &'g CgrGraph,
    /// The uncompressed adjacency, for ownership and boundary discovery.
    pub graph: &'g Csr,
    /// The device placement.
    pub plan: &'g ShardPlan,
    /// The fine streaming partitions every shard's cache draws from.
    pub parts: &'g PartitionMap,
    /// Device↔device link for the frontier exchange.
    pub interconnect: InterconnectConfig,
    /// Per-device simulator configuration.
    pub device_config: DeviceConfig,
    /// Decode strategy inside each shard.
    pub strategy: Strategy,
    /// Host link streaming partitions fault over.
    pub pcie: PcieConfig,
    /// Streaming knobs (chunking, overlap).
    pub config: OocConfig,
    /// Partition-cache byte budget **per device**.
    pub cache_budget: usize,
}

enum InnerHolder<'g> {
    Gcgt(GcgtEngine<'g>),
    GpuCsr(GpuCsrEngine<'g>),
    Gunrock(GunrockEngine<'g>),
    /// One streaming engine per shard, each with a private partition cache
    /// under the per-device budget.
    Ooc(Vec<OocEngine<'g>>),
}

/// A sharded traversal engine: N modeled devices, each expanding its owned
/// slice of every frontier, exchanging boundary discoveries as frontier
/// bitmaps between steps. Implements [`Expander`], so all applications and
/// the session/serving layers run on it unmodified.
pub struct ShardEngine<'g> {
    graph: &'g Csr,
    plan: &'g ShardPlan,
    interconnect: InterconnectConfig,
    direction: DirectionMode,
    inner: InnerHolder<'g>,
}

impl<'g> ShardEngine<'g> {
    /// A sharded in-core compressed engine. Fails when graph plus traversal
    /// buffers exceed the reference device's capacity.
    pub fn gcgt(
        cgr: &'g CgrGraph,
        graph: &'g Csr,
        plan: &'g ShardPlan,
        interconnect: InterconnectConfig,
        device_config: DeviceConfig,
        strategy: Strategy,
    ) -> Result<Self, OomError> {
        Ok(Self {
            graph,
            plan,
            interconnect,
            direction: DirectionMode::Push,
            inner: InnerHolder::Gcgt(GcgtEngine::new(cgr, device_config, strategy)?),
        })
    }

    /// A sharded GPUCSR baseline engine.
    pub fn gpu_csr(
        graph: &'g Csr,
        plan: &'g ShardPlan,
        interconnect: InterconnectConfig,
        device_config: DeviceConfig,
    ) -> Result<Self, OomError> {
        Ok(Self {
            graph,
            plan,
            interconnect,
            direction: DirectionMode::Push,
            inner: InnerHolder::GpuCsr(GpuCsrEngine::new(graph, device_config)?),
        })
    }

    /// A sharded Gunrock-style baseline engine.
    pub fn gunrock(
        graph: &'g Csr,
        plan: &'g ShardPlan,
        interconnect: InterconnectConfig,
        device_config: DeviceConfig,
    ) -> Result<Self, OomError> {
        Ok(Self {
            graph,
            plan,
            interconnect,
            direction: DirectionMode::Push,
            inner: InnerHolder::Gunrock(GunrockEngine::new(graph, device_config)?),
        })
    }

    /// A sharded **streaming** engine: every shard runs its own partition
    /// cache under `cache_budget` bytes. Fails when one cache cannot hold
    /// the largest partition, or when the traversal scratch plus the
    /// *aggregate* of all per-shard caches exceeds device capacity — the
    /// caches coexist on the reference device, so the aggregate must be
    /// verified up front (partition faults inside a run are infallible).
    pub fn out_of_core(p: ShardOocParams<'g>) -> Result<Self, OomError> {
        let scratch = gcgt_core::memory::traversal_buffers_bytes(p.cgr.num_nodes());
        let devices = p.plan.devices();
        let aggregate = scratch + devices * p.cache_budget;
        if aggregate > p.device_config.mem_capacity {
            return Err(OomError {
                requested: aggregate,
                capacity: p.device_config.mem_capacity,
            });
        }
        let engines = (0..devices)
            .map(|_| {
                OocEngine::new(
                    p.cgr,
                    p.parts,
                    p.device_config,
                    p.strategy,
                    p.pcie,
                    p.config,
                    p.cache_budget,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            graph: p.graph,
            plan: p.plan,
            interconnect: p.interconnect,
            direction: DirectionMode::Push,
            inner: InnerHolder::Ooc(engines),
        })
    }

    /// Sets the expansion-direction policy. Pull composes with sharding by
    /// ownership of the **candidate scan**: a pull step's work list is the
    /// unvisited candidates, each scanned by its owning shard, with remote
    /// parents learned through the same bitmap exchange.
    #[must_use]
    pub fn with_direction(mut self, direction: DirectionMode) -> Self {
        self.direction = direction;
        self
    }

    /// The device placement.
    pub fn plan(&self) -> &ShardPlan {
        self.plan
    }

    /// The device↔device link model.
    pub fn interconnect(&self) -> &InterconnectConfig {
        &self.interconnect
    }

    /// Charges one BSP step on `device`: the barrier, then the all-to-all
    /// boundary-bitmap exchange for this step's `work` list (frontier nodes
    /// in push mode, unvisited candidates in pull mode).
    fn charge_step(&self, device: &mut Device, work: &[NodeId]) {
        let d = self.plan.devices();
        if d <= 1 || work.is_empty() {
            return;
        }
        device.charge_sync_step();
        // A shard sends device j one bitmap iff it discovered any node j
        // owns; boundary_nodes counts the distinct remote discoveries.
        let mut pair_active = vec![false; d * d];
        let mut seen = vec![false; self.graph.num_nodes()];
        let mut boundary = 0u64;
        for &u in work {
            let i = self.plan.owner_of(u);
            for &v in self.graph.neighbors(u) {
                let j = self.plan.owner_of(v);
                if j != i {
                    pair_active[i * d + j] = true;
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        boundary += 1;
                    }
                }
            }
        }
        let mut bytes = 0usize;
        let mut messages = 0usize;
        for i in 0..d {
            for j in 0..d {
                if pair_active[i * d + j] {
                    messages += 1;
                    bytes += self.plan.bitmap_bytes(j);
                }
            }
        }
        let exchange_ms = self.interconnect.exchange_ms(bytes, messages);
        // An injected link fault wastes the whole all-to-all round: the
        // chaos gate re-charges the failed exchange (plus backoff) into
        // `exchange_ms` per failed attempt before the successful round is
        // charged below. No-op without an active fault plan.
        device.chaos_gate(gcgt_simt::chaos::FaultDomain::Exchange, exchange_ms);
        let obs_start = device.observer().is_some().then(|| device.modeled_ms());
        device.charge_exchange(exchange_ms, boundary);
        if let (Some(start_ms), Some(obs)) = (obs_start, device.observer()) {
            obs.exchange(&gcgt_simt::obs::ExchangeEvent {
                track: device.track(),
                start_ms,
                step: device.stats().sync_steps,
                bytes: bytes as u64,
                messages: messages as u64,
                boundary_nodes: boundary,
                exchange_ms,
            });
        }
    }
}

impl Expander for ShardEngine<'_> {
    fn num_nodes(&self) -> usize {
        match &self.inner {
            InnerHolder::Gcgt(e) => e.num_nodes(),
            InnerHolder::GpuCsr(e) => e.num_nodes(),
            InnerHolder::Gunrock(e) => e.num_nodes(),
            InnerHolder::Ooc(v) => v[0].num_nodes(),
        }
    }

    fn num_edges(&self) -> usize {
        match &self.inner {
            InnerHolder::Gcgt(e) => e.num_edges(),
            InnerHolder::GpuCsr(e) => e.num_edges(),
            InnerHolder::Gunrock(e) => e.num_edges(),
            InnerHolder::Ooc(v) => v[0].num_edges(),
        }
    }

    fn out_degree(&self, u: NodeId) -> usize {
        match &self.inner {
            InnerHolder::Gcgt(e) => e.out_degree(u),
            InnerHolder::GpuCsr(e) => e.out_degree(u),
            InnerHolder::Gunrock(e) => e.out_degree(u),
            InnerHolder::Ooc(v) => v[0].out_degree(u),
        }
    }

    fn direction(&self) -> DirectionMode {
        self.direction
    }

    fn device_config(&self) -> &DeviceConfig {
        match &self.inner {
            InnerHolder::Gcgt(e) => e.device_config(),
            InnerHolder::GpuCsr(e) => e.device_config(),
            InnerHolder::Gunrock(e) => e.device_config(),
            InnerHolder::Ooc(v) => v[0].device_config(),
        }
    }

    fn footprint(&self) -> usize {
        match &self.inner {
            InnerHolder::Gcgt(e) => e.footprint(),
            InnerHolder::GpuCsr(e) => e.footprint(),
            InnerHolder::Gunrock(e) => e.footprint(),
            InnerHolder::Ooc(v) => v[0].footprint(),
        }
    }

    fn structure_bytes(&self) -> usize {
        match &self.inner {
            InnerHolder::Gcgt(e) => e.structure_bytes(),
            InnerHolder::GpuCsr(e) => e.structure_bytes(),
            InnerHolder::Gunrock(e) => e.structure_bytes(),
            InnerHolder::Ooc(v) => v[0].structure_bytes(),
        }
    }

    fn prepare_frontier(&self, device: &mut Device, work: &[NodeId]) {
        // Residency first: each streaming shard faults the partitions its
        // owned slice of the work list needs, in shard order (serial, hence
        // deterministic). One shard degenerates to the serial streaming
        // engine bit-for-bit.
        if let InnerHolder::Ooc(engines) = &self.inner {
            if self.plan.devices() == 1 {
                engines[0].prepare_frontier(device, work);
            } else {
                let mut owned: Vec<Vec<NodeId>> = vec![Vec::new(); self.plan.devices()];
                for &u in work {
                    owned[self.plan.owner_of(u)].push(u);
                }
                for (s, nodes) in owned.iter().enumerate() {
                    if !nodes.is_empty() {
                        engines[s].prepare_frontier(device, nodes);
                    }
                }
            }
        }
        // Then the BSP barrier and boundary exchange for this step.
        self.charge_step(device, work);
    }

    fn expand_chunk<S: Sink>(&self, warp: &mut WarpSim, chunk: &[NodeId], sink: &mut S) {
        match &self.inner {
            InnerHolder::Gcgt(e) => e.expand_chunk(warp, chunk, sink),
            InnerHolder::GpuCsr(e) => e.expand_chunk(warp, chunk, sink),
            InnerHolder::Gunrock(e) => e.expand_chunk(warp, chunk, sink),
            InnerHolder::Ooc(v) => v[0].expand_chunk(warp, chunk, sink),
        }
    }

    fn pull_chunk(
        &self,
        warp: &mut WarpSim,
        chunk: &[NodeId],
        frontier: &Frontier,
        out: &mut Vec<(NodeId, NodeId)>,
    ) -> u64 {
        match &self.inner {
            InnerHolder::Gcgt(e) => e.pull_chunk(warp, chunk, frontier, out),
            InnerHolder::GpuCsr(e) => e.pull_chunk(warp, chunk, frontier, out),
            InnerHolder::Gunrock(e) => e.pull_chunk(warp, chunk, frontier, out),
            InnerHolder::Ooc(v) => v[0].pull_chunk(warp, chunk, frontier, out),
        }
    }

    fn release_residency(&self, device: &mut Device) {
        if let InnerHolder::Ooc(engines) = &self.inner {
            for e in engines {
                e.release_residency(device);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcgt_cgr::CgrConfig;
    use gcgt_core::bfs;
    use gcgt_graph::gen::{web_graph, WebParams};

    fn fixture() -> (Csr, CgrGraph) {
        let g = web_graph(&WebParams::uk2002_like(400), 5).symmetrized();
        let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
        let cgr = CgrGraph::encode(&g, &cfg);
        (g, cgr)
    }

    fn device() -> DeviceConfig {
        DeviceConfig::titan_v_scaled(64 << 20)
    }

    #[test]
    fn outputs_and_kernel_stats_bitwise_serial_at_any_device_count() {
        let (g, cgr) = fixture();
        let serial = GcgtEngine::new(&cgr, device(), Strategy::Full).unwrap();
        let want = bfs(&serial, 0);
        let want_stats = {
            let mut dev = serial.new_device();
            let _ = gcgt_core::bfs_in(&serial, &mut dev, 0);
            dev.stats()
        };
        for devices in [1, 2, 4, 8] {
            let plan = ShardPlan::build(&cgr, devices);
            let sharded = ShardEngine::gcgt(
                &cgr,
                &g,
                &plan,
                InterconnectConfig::nvlink(),
                device(),
                Strategy::Full,
            )
            .unwrap();
            let got = bfs(&sharded, 0);
            assert_eq!(got.depth, want.depth, "{devices} devices");
            assert_eq!(got.reached, want.reached);
            let mut dev = sharded.new_device();
            let _ = gcgt_core::bfs_in(&sharded, &mut dev, 0);
            let stats = dev.stats();
            // Kernel-side numbers are bitwise the serial run's…
            assert_eq!(stats.est_ms.to_bits(), want_stats.est_ms.to_bits());
            assert_eq!(stats.cycles.to_bits(), want_stats.cycles.to_bits());
            assert_eq!(stats.launches, want_stats.launches);
            assert_eq!(stats.tally, want_stats.tally);
            assert_eq!(stats.mem, want_stats.mem);
            // …and the exchange lives in its own counters.
            if devices == 1 {
                assert_eq!(stats.exchange_ms, 0.0);
                assert_eq!(stats.sync_steps, 0);
                assert_eq!(stats.boundary_nodes, 0);
            } else {
                assert!(stats.exchange_ms > 0.0, "{devices} devices");
                assert!(stats.sync_steps > 0);
                assert!(stats.boundary_nodes > 0);
            }
        }
    }

    #[test]
    fn boundary_traffic_is_monotone_in_device_count() {
        let (g, cgr) = fixture();
        let boundary = |devices: usize| {
            let plan = ShardPlan::build(&cgr, devices);
            let e = ShardEngine::gcgt(
                &cgr,
                &g,
                &plan,
                InterconnectConfig::nvlink(),
                device(),
                Strategy::Full,
            )
            .unwrap();
            let mut dev = e.new_device();
            let _ = gcgt_core::bfs_in(&e, &mut dev, 0);
            dev.stats().boundary_nodes
        };
        let (b1, b2, b4, b8) = (boundary(1), boundary(2), boundary(4), boundary(8));
        assert_eq!(b1, 0);
        assert!(b2 > 0);
        assert!(b2 <= b4 && b4 <= b8, "{b2} {b4} {b8}");
    }

    #[test]
    fn streaming_shards_verify_aggregate_capacity() {
        let (g, cgr) = fixture();
        let plan = ShardPlan::build(&cgr, 8);
        let parts = PartitionMap::build(&cgr, 1 << 10);
        let scratch = gcgt_core::memory::traversal_buffers_bytes(cgr.num_nodes());
        let cache_budget = parts.max_partition_bytes().max(1 << 10);
        // Eight caches would overflow a device sized for about two.
        let tight = DeviceConfig::titan_v_scaled(scratch + 2 * cache_budget);
        let err = ShardEngine::out_of_core(ShardOocParams {
            cgr: &cgr,
            graph: &g,
            plan: &plan,
            parts: &parts,
            interconnect: InterconnectConfig::nvlink(),
            device_config: tight,
            strategy: Strategy::Full,
            pcie: PcieConfig::default(),
            config: OocConfig::default(),
            cache_budget,
        });
        assert!(err.is_err());
        let roomy = DeviceConfig::titan_v_scaled(scratch + 8 * cache_budget);
        let ok = ShardEngine::out_of_core(ShardOocParams {
            cgr: &cgr,
            graph: &g,
            plan: &plan,
            parts: &parts,
            interconnect: InterconnectConfig::nvlink(),
            device_config: roomy,
            strategy: Strategy::Full,
            pcie: PcieConfig::default(),
            config: OocConfig::default(),
            cache_budget,
        });
        assert!(ok.is_ok());
    }
}
