//! # gcgt-shard
//!
//! Sharded multi-device traversal over compressed graphs: the second
//! scaling axis of the reproduction. A [`ShardPlan`] places contiguous,
//! node-aligned slices of the graph onto N modeled GPUs (reusing the
//! out-of-core partitioner for the compressed cut); a [`ShardEngine`]
//! runs any inner engine — in-core GCGT, the CSR baselines, or streaming
//! out-of-core under a per-device budget — as an owner-computes
//! bulk-synchronous loop. Every step, each shard expands exactly the
//! frontier nodes it owns; discoveries of remotely-owned nodes are
//! exchanged as per-destination dense frontier bitmaps over a modeled
//! [`gcgt_simt::InterconnectConfig`] (NVLink or PCIe peer links).
//!
//! The engine implements the `Expander` contract, so all five applications,
//! the session layer and the serving pools run sharded unmodified — and
//! because the per-step union of per-shard work is exactly the serial
//! schedule, `QueryOutput`s and kernel-side `RunStats` are **bitwise
//! identical at any shard count**; the sharding overhead is charged into
//! the separate `exchange_ms` / `boundary_nodes` / `sync_steps` counters.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]
pub mod engine;
pub mod plan;

pub use engine::{ShardEngine, ShardInner, ShardOocParams};
pub use plan::{Shard, ShardPlan};
