//! Placement of contiguous graph ranges onto N modeled devices.
//!
//! A [`ShardPlan`] owns the `node → device` map of a sharded session: the
//! node range is cut into one contiguous, node-aligned shard per device,
//! balanced by structure bytes so every device holds a comparable slice of
//! the (compressed or CSR) adjacency. Contiguity keeps ownership a binary
//! search and boundary exchange a dense bitmap over the destination's own
//! range — the disciplined, coalesced cross-link access pattern the
//! multi-GPU literature (EMOGI, the CXL external-memory work) identifies as
//! the scaling win.

use gcgt_cgr::CgrGraph;
use gcgt_graph::{Csr, NodeId};
use gcgt_ooc::PartitionMap;

/// One device's contiguous vertex range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// First node of the range (inclusive).
    pub first_node: NodeId,
    /// End of the range (exclusive). Shards of a skewed graph (or a plan
    /// with more devices than nodes) may be empty.
    pub end_node: NodeId,
    /// Structure bytes this shard keeps resident on its device.
    pub bytes: usize,
    /// Extra bytes the device must co-stage under reference compression:
    /// the compressed lists of nodes outside the shard that its reference
    /// chains pass through (see [`gcgt_ooc::Partition::closure_bytes`]).
    /// Zero for CSR shards and whenever `ref_window == 0`.
    pub closure_bytes: usize,
}

impl Shard {
    /// Number of nodes this shard owns.
    pub fn num_nodes(&self) -> usize {
        (self.end_node - self.first_node) as usize
    }

    /// Total device bytes to traverse the shard in isolation: its own
    /// extent plus its reference-chain closure.
    pub fn resident_bytes(&self) -> usize {
        self.bytes + self.closure_bytes
    }
}

/// The placement of a graph onto N modeled devices: contiguous node-aligned
/// shards, balanced by structure bytes.
///
/// Built from the same machinery as out-of-core streaming
/// ([`PartitionMap::build_count`]) for compressed graphs, or directly over
/// CSR bytes for the uncompressed baselines. Shard boundaries **nest**
/// across power-of-two device counts (the 4-device cut refines the
/// 2-device cut), so refining a deployment only ever adds cut points — and
/// per-step boundary traffic is monotone in the device count.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Places `cgr` onto `devices` modeled GPUs, balanced by compressed
    /// bytes — delegates the cut to [`PartitionMap::build_count`].
    ///
    /// # Panics
    ///
    /// Panics when `devices` is zero.
    pub fn build(cgr: &CgrGraph, devices: usize) -> ShardPlan {
        Self::from_partition_map(&PartitionMap::build_count(cgr, devices))
    }

    /// Adopts an existing node-aligned partitioning (one partition per
    /// device) as a placement.
    pub fn from_partition_map(map: &PartitionMap) -> ShardPlan {
        ShardPlan {
            shards: map
                .parts()
                .iter()
                .map(|p| Shard {
                    first_node: p.first_node,
                    end_node: p.end_node,
                    bytes: p.bytes,
                    closure_bytes: p.closure_bytes,
                })
                .collect(),
        }
    }

    /// Places an uncompressed CSR graph onto `devices` modeled GPUs,
    /// balanced by CSR bytes (4-byte column entries plus an 8-byte offset
    /// share per node) with the same nested node-aligned boundaries as the
    /// compressed cut.
    ///
    /// # Panics
    ///
    /// Panics when `devices` is zero.
    pub fn build_csr(graph: &Csr, devices: usize) -> ShardPlan {
        assert!(devices >= 1, "a shard plan needs at least one device");
        let n = graph.num_nodes();
        // Cumulative CSR bytes of the range [0, s).
        let mut cum = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        cum.push(0);
        for u in 0..n {
            acc += 8 + 4 * graph.degree(u as NodeId);
            cum.push(acc);
        }
        let total = acc as u128;
        let mut bounds = Vec::with_capacity(devices + 1);
        bounds.push(0usize);
        for i in 1..devices {
            let target = (total * i as u128 / devices as u128) as usize;
            let (mut lo, mut hi) = (*bounds.last().expect("bounds starts with a 0 sentinel"), n);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if cum[mid] >= target {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            bounds.push(lo);
        }
        bounds.push(n);
        ShardPlan {
            shards: bounds
                .windows(2)
                .map(|w| Shard {
                    first_node: w[0] as NodeId,
                    end_node: w[1] as NodeId,
                    bytes: cum[w[1]] - cum[w[0]],
                    closure_bytes: 0,
                })
                .collect(),
        }
    }

    /// Number of modeled devices (always ≥ 1).
    pub fn devices(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in node order — one per device.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shard placed on device `s`.
    pub fn shard(&self, s: usize) -> &Shard {
        &self.shards[s]
    }

    /// The device owning node `u` — a binary search over the node-aligned
    /// shard boundaries.
    pub fn owner_of(&self, u: NodeId) -> usize {
        // Last shard whose first_node <= u; skips empty shards sharing the
        // boundary (same scheme as PartitionMap::partition_of).
        self.shards.partition_point(|p| p.first_node <= u) - 1
    }

    /// Bytes of a dense frontier bitmap over device `s`'s owned range —
    /// the unit of boundary exchange: a shard that discovered any node
    /// owned by `s` sends it one such bitmap.
    pub fn bitmap_bytes(&self, s: usize) -> usize {
        self.shards[s].num_nodes().div_ceil(8)
    }

    /// The largest single shard in bytes — what the biggest device must
    /// hold.
    pub fn max_shard_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.bytes).max().unwrap_or(0)
    }

    /// The largest shard counting its reference-chain closure — the
    /// per-device residency floor under reference compression. Equals
    /// [`ShardPlan::max_shard_bytes`] when the encoding carries no
    /// references.
    pub fn max_resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.resident_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Total structure bytes across all devices.
    pub fn total_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.bytes).sum()
    }

    /// Stored edges whose endpoints live on different devices — the
    /// traffic ceiling of the frontier exchange.
    pub fn boundary_edges(&self, graph: &Csr) -> u64 {
        let mut edges = 0u64;
        for u in 0..graph.num_nodes() as NodeId {
            let owner = self.owner_of(u);
            for &v in graph.neighbors(u) {
                if self.owner_of(v) != owner {
                    edges += 1;
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcgt_cgr::CgrConfig;
    use gcgt_graph::gen::{web_graph, WebParams};

    fn sample() -> (Csr, CgrGraph) {
        let g = web_graph(&WebParams::uk2002_like(600), 11).symmetrized();
        let cgr = CgrGraph::encode(&g, &CgrConfig::paper_default());
        (g, cgr)
    }

    #[test]
    fn plan_covers_every_node_exactly_once() {
        let (g, cgr) = sample();
        for devices in [1, 2, 4, 8] {
            let plan = ShardPlan::build(&cgr, devices);
            assert_eq!(plan.devices(), devices);
            assert_eq!(plan.shards()[0].first_node, 0);
            assert_eq!(
                plan.shards().last().unwrap().end_node as usize,
                g.num_nodes()
            );
            for u in 0..g.num_nodes() as NodeId {
                let s = plan.shard(plan.owner_of(u));
                assert!(s.first_node <= u && u < s.end_node);
            }
        }
    }

    #[test]
    fn csr_plan_matches_the_same_contract() {
        let (g, _) = sample();
        for devices in [1, 3, 8] {
            let plan = ShardPlan::build_csr(&g, devices);
            assert_eq!(plan.devices(), devices);
            assert_eq!(
                plan.shards().last().unwrap().end_node as usize,
                g.num_nodes()
            );
            for u in 0..g.num_nodes() as NodeId {
                let s = plan.shard(plan.owner_of(u));
                assert!(s.first_node <= u && u < s.end_node);
            }
            assert_eq!(plan.total_bytes(), 8 * g.num_nodes() + 4 * g.num_edges());
        }
    }

    #[test]
    fn boundaries_nest_and_boundary_edges_grow() {
        let (g, cgr) = sample();
        let plans: Vec<ShardPlan> = [1, 2, 4, 8]
            .iter()
            .map(|&d| ShardPlan::build(&cgr, d))
            .collect();
        for pair in plans.windows(2) {
            let coarse: Vec<NodeId> = pair[0].shards().iter().map(|s| s.first_node).collect();
            let fine: Vec<NodeId> = pair[1].shards().iter().map(|s| s.first_node).collect();
            assert!(coarse.iter().all(|b| fine.contains(b)));
            assert!(pair[0].boundary_edges(&g) <= pair[1].boundary_edges(&g));
        }
        assert_eq!(plans[0].boundary_edges(&g), 0);
        assert!(plans[3].boundary_edges(&g) > 0);
    }

    #[test]
    fn shards_carry_their_reference_closures() {
        // Reference-free encodings (and CSR shards) have empty closures;
        // a reference-compressed placement inherits each partition's
        // closure bytes so per-device residency floors stay honest.
        let (g, cgr) = sample();
        for s in ShardPlan::build(&cgr, 4).shards() {
            assert_eq!(s.closure_bytes, 0);
            assert_eq!(s.resident_bytes(), s.bytes);
        }
        for s in ShardPlan::build_csr(&g, 4).shards() {
            assert_eq!(s.closure_bytes, 0);
        }

        let rg = web_graph(&WebParams::eu2015_like(1_200), 9);
        let rcfg = CgrConfig::paper_default().with_ref_window(32);
        let rcgr = CgrGraph::encode(&rg, &rcfg);
        assert!(rcgr.stats().ref_nodes > 0);
        let plan = ShardPlan::build(&rcgr, 8);
        assert!(
            plan.shards().iter().any(|s| s.closure_bytes > 0),
            "an 8-way cut of a reference-heavy graph should cross a chain"
        );
        assert!(plan.max_resident_bytes() >= plan.max_shard_bytes());
    }

    #[test]
    fn bitmap_bytes_is_the_dense_owned_range() {
        let (_, cgr) = sample();
        let plan = ShardPlan::build(&cgr, 4);
        for s in 0..plan.devices() {
            assert_eq!(plan.bitmap_bytes(s), plan.shard(s).num_nodes().div_ceil(8));
        }
    }
}
