//! Device-level cost model and memory capacity.
//!
//! A roofline model converts the per-kernel-launch aggregates (instruction
//! slots, memory transactions, atomics) into estimated cycles: compute and
//! memory streams overlap across the thousands of resident warps, so the
//! launch cost is the *maximum* of the two streams (plus an atomic
//! serialization term), floored by the longest single warp — a small
//! frontier cannot finish faster than its one busy warp. Per-launch overhead
//! models the host-side kernel dispatch that dominates deep, narrow BFS
//! levels.
//!
//! Defaults approximate the paper's NVIDIA TITAN V (80 SMs, ~1.2 GHz,
//! ~650 GB/s HBM2, 12 GB), with the capacity scaled per experiment so that
//! the synthetic datasets reproduce the paper's OOM pattern.

use crate::mem::MemStats;
use crate::tally::{OpClass, Tally, ALL_CLASSES, NUM_CLASSES};
use gcgt_chaos::{FaultDomain, FaultInjector, FaultPlan, TypedFailure};
use gcgt_obs::{AllocEvent, ClassTally, FaultEvent, LaunchEvent, ObserverHandle};

/// Hardware parameters of the simulated device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceConfig {
    /// Lanes per warp.
    pub warp_width: usize,
    /// Streaming multiprocessors (issue streams).
    pub num_sms: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Sustainable memory transactions (128 B) per core cycle, device-wide.
    pub mem_txn_per_cycle: f64,
    /// Serialized atomic operations per cycle, device-wide.
    pub atomics_per_cycle: f64,
    /// Host-side overhead per kernel launch, microseconds.
    pub launch_overhead_us: f64,
    /// Effective latency (cycles) charged per *dependent* memory step on
    /// the critical-path warp: a lane serially decoding a residual chain
    /// cannot overlap its next read with the current one, which is exactly
    /// the super-node serialization of Section 5. Amortized for the
    /// ~16-deep load pipelining real SMs provide.
    pub serial_mem_lat_cycles: f64,
    /// Device memory capacity in bytes (for OOM accounting).
    pub mem_capacity: usize,
    /// Per-warp cache slots (128-byte lines) for the memory model.
    pub cache_lines_per_warp: usize,
    /// Whether the device carries the precomputed VLC decode tables in
    /// shared memory. When set, [`crate::WarpSim`]s derived from this
    /// configuration charge decode steps as [`OpClass::TableDecode`] (one
    /// table probe) instead of `ItvDecode`/`ResDecode` (a serial bit-scan)
    /// — same step schedule, lower per-step cost, the way Section 5.1
    /// models coalescing wins. Kernels that never decode VLC (the CSR
    /// baselines) are unaffected.
    pub table_decode: bool,
    /// Issue cycles per instruction class: a VLC decode step is a dozen
    /// ALU/shift instructions, a raw CSR gather is one — this is what makes
    /// traversing compressed adjacency cost compute, as the paper's
    /// decoding-overhead numbers reflect.
    pub class_cycles: [f64; NUM_CLASSES],
}

/// Default per-class issue costs (cycles per warp instruction slot),
/// indexed by [`OpClass`].
pub const DEFAULT_CLASS_CYCLES: [f64; NUM_CLASSES] = [
    6.0,  // Header: decode degNum/itvNum (or read two CSR offsets)
    12.0, // ItvDecode: two VLC codewords (gap + length)
    6.0,  // ResDecode: one VLC codeword
    2.0,  // Handle: status check + conditional write
    5.0,  // Scan: log-depth shuffle prefix sum
    1.0,  // Shfl
    1.0,  // Sync / vote
    4.0,  // Atomic
    4.0,  // ParDecode: one speculative/marking round
    2.0,  // Jump
    2.0,  // Generic
    2.0,  // TableDecode: one shared-memory table probe + shift/mask fixup
    8.0,  // RefChase: read a referenced node's prologue (one chain hop)
];

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::titan_v_scaled(512 << 20)
    }
}

impl DeviceConfig {
    /// TITAN-V-like throughput ratios with an explicit memory capacity
    /// (experiments scale the capacity with their dataset sizes; the paper's
    /// card has 12 GB for graphs two to three orders of magnitude larger).
    pub fn titan_v_scaled(mem_capacity: usize) -> Self {
        Self {
            warp_width: 32,
            num_sms: 80,
            clock_ghz: 1.2,
            // ~650 GB/s ÷ 128 B ÷ 1.2 GHz ≈ 4.2 transactions/cycle.
            mem_txn_per_cycle: 4.2,
            atomics_per_cycle: 2.0,
            launch_overhead_us: 0.5,
            serial_mem_lat_cycles: 24.0,
            mem_capacity,
            cache_lines_per_warp: 64,
            table_decode: true,
            class_cycles: DEFAULT_CLASS_CYCLES,
        }
    }

    /// The non-zero per-class issue counts of `tally` with their weighted
    /// cycles under this configuration, in [`OpClass`] order — the
    /// decode-class breakdown trace events and [`RunStats::explain`] report.
    pub fn class_breakdown(&self, tally: &Tally) -> Vec<ClassTally> {
        ALL_CLASSES
            .iter()
            .filter_map(|&class| {
                let issues = tally.issues[class as usize];
                (issues > 0).then(|| ClassTally {
                    class: class.name(),
                    issues,
                    cycles: issues as f64 * self.class_cycles[class as usize],
                })
            })
            .collect()
    }

    /// Weighted compute cycles of a tally under this configuration.
    pub fn weighted_cycles(&self, tally: &Tally) -> f64 {
        tally
            .issues
            .iter()
            .zip(&self.class_cycles)
            .map(|(&n, &c)| n as f64 * c)
            .sum()
    }

    /// Critical-path cycles of one warp: weighted instruction slots plus
    /// dependent-memory-step latency.
    pub fn warp_critical_cycles(&self, tally: &Tally, mem: &MemStats) -> f64 {
        self.weighted_cycles(tally) + mem.mem_steps as f64 * self.serial_mem_lat_cycles
    }

    /// A fresh [`Device`] under this configuration — the construction hook
    /// every engine's `new_device` routes through: each run (and each
    /// serving-pool worker) derives its own simulated device from the one
    /// shared configuration of a prepared graph, so residency and cost
    /// accounting never cross worker boundaries.
    pub fn new_device(&self) -> Device {
        Device::new(*self)
    }

    /// A tiny warp configuration for unit tests and the Figure 4 example
    /// (the paper's walk-through uses an 8-lane warp).
    pub fn test_tiny() -> Self {
        Self {
            warp_width: 8,
            num_sms: 4,
            clock_ghz: 1.0,
            mem_txn_per_cycle: 2.0,
            atomics_per_cycle: 1.0,
            launch_overhead_us: 0.0,
            serial_mem_lat_cycles: 0.0,
            mem_capacity: usize::MAX,
            cache_lines_per_warp: 16,
            table_decode: true,
            class_cycles: [1.0; NUM_CLASSES],
        }
    }
}

/// Raised when a structure does not fit the simulated device memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OomError {
    /// Bytes requested.
    pub requested: usize,
    /// Device capacity.
    pub capacity: usize,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: need {} bytes, capacity {} bytes",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

/// Cost of one kernel launch, as fed to [`Device::account_launch`].
#[derive(Clone, Copy, Debug, Default)]
pub struct IterationCost {
    /// Merged instruction tallies of every warp in the launch.
    pub tally: Tally,
    /// Merged memory counters.
    pub mem: MemStats,
    /// Number of warps launched.
    pub warps: usize,
    /// Critical-path cycles of the single busiest warp (weighted issues
    /// plus dependent-memory-step latency), computed by the launcher.
    pub max_warp_cycles: f64,
}

/// Accumulates launch costs into an estimated execution time.
#[derive(Clone, Debug)]
pub struct Device {
    config: DeviceConfig,
    cycles: f64,
    launches: u64,
    tally: Tally,
    mem: MemStats,
    allocated: usize,
    partition_faults: u64,
    partition_evictions: u64,
    transfer_ms: f64,
    push_steps: u64,
    pull_steps: u64,
    pushed_edges: u64,
    pulled_edges: u64,
    exchange_ms: f64,
    boundary_nodes: u64,
    sync_steps: u64,
    faults_injected: u64,
    retries: u64,
    backoff_ms: f64,
    observer: Option<ObserverHandle>,
    track: u64,
    fault_plan: Option<FaultPlan>,
    chaos: Option<FaultInjector>,
}

impl Device {
    /// A fresh device.
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            config,
            cycles: 0.0,
            launches: 0,
            tally: Tally::new(config.warp_width),
            mem: MemStats::default(),
            allocated: 0,
            partition_faults: 0,
            partition_evictions: 0,
            transfer_ms: 0.0,
            push_steps: 0,
            pull_steps: 0,
            pushed_edges: 0,
            pulled_edges: 0,
            exchange_ms: 0.0,
            boundary_nodes: 0,
            sync_steps: 0,
            faults_injected: 0,
            retries: 0,
            backoff_ms: 0.0,
            observer: None,
            track: 0,
            fault_plan: None,
            chaos: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Installs an observer: launches and allocation changes are reported
    /// from here on (richer spans — levels, cache faults, exchanges — are
    /// emitted by their call sites through [`Device::observer`]). Costs
    /// nothing when never called: every emission site null-checks first,
    /// and observation never changes any accounted number.
    pub fn set_observer(&mut self, observer: ObserverHandle) {
        self.observer = Some(observer);
    }

    /// The installed observer, if any — emission sites with richer context
    /// than the device (the level launchers, the partition cache, the shard
    /// exchange) report through this.
    pub fn observer(&self) -> Option<&ObserverHandle> {
        self.observer.as_ref()
    }

    /// Tags this device's future events with a trace track (a Chrome-trace
    /// `tid`). The serving pool sets the query's submission index before
    /// each query, so traces canonicalize per query, not per racing worker.
    ///
    /// The track also salts the fault injector: a re-track re-derives the
    /// verdict stream, so a query's faults depend on *which query it is*
    /// (its submission index), never on which worker happens to run it.
    pub fn set_track(&mut self, track: u64) {
        self.track = track;
        if let Some(plan) = self.fault_plan {
            self.chaos = Some(plan.injector(track));
        }
    }

    /// Installs a fault plan: from here on the chaos charge points
    /// ([`Device::alloc`], the partition-cache and shard-exchange gates,
    /// the per-query check) evaluate a deterministic [`FaultInjector`]
    /// derived from the plan and the current track. Installing the *empty*
    /// plan is indistinguishable from never calling this — no verdicts, no
    /// float operations, bitwise-identical accounting.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if plan.is_empty() {
            self.fault_plan = None;
            self.chaos = None;
        } else {
            self.fault_plan = Some(plan);
            self.chaos = Some(plan.injector(self.track));
        }
    }

    /// The installed fault plan, if a non-empty one is active.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_plan
    }

    /// Runs one chaos-gated operation of `domain` to completion: evaluates
    /// the injector, and for every injected transient fault charges one
    /// modeled recovery round — exponential backoff plus `wasted_ms` (the
    /// modeled cost of the attempt that failed, so a failed partition
    /// upload or boundary exchange is *re-charged*, not forgiven) — into
    /// `exchange_ms` (Exchange domain) or `transfer_ms` (everything else).
    /// Returns normally once a verdict comes back clean; escalates with a
    /// typed [`TypedFailure::FaultBudgetExhausted`] panic when retries are
    /// disabled or the consecutive-failure budget is spent.
    ///
    /// With no (or an empty) fault plan installed this is a single
    /// null-check: no verdict is drawn and nothing is charged.
    pub fn chaos_gate(&mut self, domain: FaultDomain, wasted_ms: f64) {
        let Some(mut chaos) = self.chaos.take() else {
            return;
        };
        let retry = chaos.plan().retry;
        let mut failures: u32 = 0;
        while chaos.should_fail(domain) {
            failures += 1;
            self.faults_injected += 1;
            if failures > retry.max_attempts {
                if let Some(obs) = &self.observer {
                    obs.fault(&FaultEvent {
                        track: self.track,
                        ts_ms: self.modeled_ms(),
                        domain: domain.name(),
                        kind: "exhausted",
                        attempt: failures as u64,
                        backoff_ms: 0.0,
                    });
                }
                self.chaos = Some(chaos);
                gcgt_chaos::raise(TypedFailure::FaultBudgetExhausted {
                    domain: domain.name(),
                    failures,
                });
            }
            let backoff = retry.backoff_ms(failures);
            self.retries += 1;
            self.backoff_ms += backoff;
            let charge = backoff + wasted_ms;
            if domain == FaultDomain::Exchange {
                self.exchange_ms += charge;
            } else {
                self.transfer_ms += charge;
            }
            if let Some(obs) = &self.observer {
                obs.fault(&FaultEvent {
                    track: self.track,
                    ts_ms: self.modeled_ms(),
                    domain: domain.name(),
                    kind: "retry",
                    attempt: failures as u64,
                    backoff_ms: backoff,
                });
            }
        }
        self.chaos = Some(chaos);
    }

    /// Draws one terminal per-query fault verdict
    /// ([`FaultDomain::Query`]) — checked once when an executor takes a
    /// query view. Returns `true` when the query must fail; the caller
    /// escalates with [`TypedFailure::InjectedQueryFailure`]. Never
    /// retried: there is nothing below a query to recover.
    pub fn inject_query_fault(&mut self) -> bool {
        let fail = match self.chaos.as_mut() {
            Some(chaos) => chaos.should_fail(FaultDomain::Query),
            None => false,
        };
        if fail {
            self.faults_injected += 1;
            if let Some(obs) = &self.observer {
                obs.fault(&FaultEvent {
                    track: self.track,
                    ts_ms: self.modeled_ms(),
                    domain: FaultDomain::Query.name(),
                    kind: "injected",
                    attempt: 1,
                    backoff_ms: 0.0,
                });
            }
        }
        fail
    }

    /// The current trace track.
    pub fn track(&self) -> u64 {
        self.track
    }

    /// The modeled clock of this device view, milliseconds: estimated
    /// kernel time plus the host-side streamed-transfer and exchange
    /// charges. Every trace-event timestamp derives from this — never from
    /// host wall-clock — which is what makes traces bitwise reproducible.
    pub fn modeled_ms(&self) -> f64 {
        self.elapsed_ms() + self.transfer_ms + self.exchange_ms
    }

    /// Registers a resident allocation (graph, frontier buffers, platform
    /// overhead). Fails when the sum exceeds capacity — the OOM bars of
    /// Figures 8 and 15.
    pub fn alloc(&mut self, bytes: usize) -> Result<(), OomError> {
        // Transient allocator stalls (chaos) resolve — with backoff charged
        // — before the genuine capacity check: an injected fault is never
        // confused with a real OOM.
        self.chaos_gate(FaultDomain::DeviceAlloc, 0.0);
        let total = self.allocated.saturating_add(bytes);
        if total > self.config.mem_capacity {
            return Err(OomError {
                requested: total,
                capacity: self.config.mem_capacity,
            });
        }
        self.allocated = total;
        if let Some(obs) = &self.observer {
            obs.alloc(&AllocEvent {
                track: self.track,
                ts_ms: self.modeled_ms(),
                kind: "alloc",
                bytes: bytes as u64,
                allocated: self.allocated as u64,
            });
        }
        Ok(())
    }

    /// Releases a resident allocation (per-query scratch freed between
    /// batched queries, or an evicted out-of-core partition).
    ///
    /// Frees are clamped at zero in release builds; a free that exceeds the
    /// currently allocated total is an accounting bug and asserts in debug
    /// builds.
    pub fn free(&mut self, bytes: usize) {
        debug_assert!(
            bytes <= self.allocated,
            "freeing {bytes} bytes with only {} allocated",
            self.allocated
        );
        self.allocated = self.allocated.saturating_sub(bytes);
        if let Some(obs) = &self.observer {
            obs.alloc(&AllocEvent {
                track: self.track,
                ts_ms: self.modeled_ms(),
                kind: "free",
                bytes: bytes as u64,
                allocated: self.allocated as u64,
            });
        }
    }

    /// Currently allocated bytes.
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// A fresh accounting view of the **same residency**: the allocation
    /// level carries over, every counter starts at zero. This is how a
    /// serving worker gives each query its own attributable [`RunStats`] —
    /// the uploaded structure stays resident across queries, but a query's
    /// statistics start from nothing, so they are bitwise identical to what
    /// the same query reports on a freshly built device. Scheduling can
    /// therefore never change a reported number.
    pub fn query_view(&self) -> Device {
        let mut view = Device::new(self.config);
        view.allocated = self.allocated;
        view.observer = self.observer.clone();
        view.track = self.track;
        // The injector re-derives from (plan, track) rather than carrying
        // over: a query's fault sequence restarts from the same state on
        // every view, so it depends only on the query's identity — never on
        // what ran on this worker before it.
        view.fault_plan = self.fault_plan;
        view.chaos = self.fault_plan.map(|p| p.injector(self.track));
        view
    }

    /// Records one out-of-core partition fault whose upload stalled the run
    /// for `transfer_ms` milliseconds of host-link time (post-overlap).
    pub fn charge_partition_fault(&mut self, transfer_ms: f64) {
        self.partition_faults += 1;
        self.transfer_ms += transfer_ms;
    }

    /// Records one out-of-core partition eviction.
    pub fn charge_partition_eviction(&mut self) {
        self.partition_evictions += 1;
    }

    /// Records one push-mode (frontier out-edge) expansion level that
    /// expanded `edges` candidate pairs — direction-optimizing BFS
    /// observability ([`RunStats::push_steps`] / [`RunStats::pushed_edges`]).
    pub fn charge_push_step(&mut self, edges: u64) {
        self.push_steps += 1;
        self.pushed_edges += edges;
    }

    /// Records one pull-mode (unvisited in-edge scan) expansion level that
    /// examined `edges` compressed neighbours before early exit
    /// ([`RunStats::pull_steps`] / [`RunStats::pulled_edges`]).
    pub fn charge_pull_step(&mut self, edges: u64) {
        self.pull_steps += 1;
        self.pulled_edges += edges;
    }

    /// Records one bulk-synchronous frontier exchange that moved boundary
    /// bitmaps for `exchange_ms` milliseconds of interconnect time and
    /// discovered `boundary_nodes` remotely-owned nodes
    /// ([`RunStats::exchange_ms`] / [`RunStats::boundary_nodes`]). Like the
    /// out-of-core transfer charge this is host-side accounting: it never
    /// touches the estimated kernel time.
    pub fn charge_exchange(&mut self, exchange_ms: f64, boundary_nodes: u64) {
        self.exchange_ms += exchange_ms;
        self.boundary_nodes += boundary_nodes;
    }

    /// Records one bulk-synchronous step barrier of a sharded run
    /// ([`RunStats::sync_steps`]).
    pub fn charge_sync_step(&mut self) {
        self.sync_steps += 1;
    }

    /// Folds one kernel launch into the running cost.
    pub fn account_launch(&mut self, cost: &IterationCost) {
        let start_ms = self.observer.is_some().then(|| self.modeled_ms());
        let issue_cycles = self.config.weighted_cycles(&cost.tally);
        // Issue throughput: one warp instruction stream per SM, limited by
        // how many warps the launch actually has.
        let streams = cost.warps.clamp(1, self.config.num_sms) as f64;
        let compute = issue_cycles / streams;
        let memory = cost.mem.transactions as f64 / self.config.mem_txn_per_cycle;
        let atomics =
            cost.tally.issues[OpClass::Atomic as usize] as f64 / self.config.atomics_per_cycle;
        // The busiest single warp floors the launch: a kernel cannot finish
        // before its critical-path warp does.
        let launch_cycles = compute.max(memory).max(atomics).max(cost.max_warp_cycles);
        self.cycles += launch_cycles;
        self.launches += 1;
        self.tally.merge(&cost.tally);
        self.mem.merge(&cost.mem);
        if let (Some(obs), Some(start_ms)) = (&self.observer, start_ms) {
            obs.launch(&LaunchEvent {
                track: self.track,
                start_ms,
                end_ms: self.modeled_ms(),
                launch: self.launches,
                warps: cost.warps as u64,
                cycles: launch_cycles,
                classes: self.config.class_breakdown(&cost.tally),
            });
        }
    }

    /// Estimated elapsed milliseconds so far (cycles / clock + launch
    /// overheads).
    pub fn elapsed_ms(&self) -> f64 {
        self.cycles / (self.config.clock_ghz * 1e6)
            + self.launches as f64 * self.config.launch_overhead_us / 1e3
    }

    /// Snapshot of every counter.
    pub fn stats(&self) -> RunStats {
        RunStats {
            est_ms: self.elapsed_ms(),
            cycles: self.cycles,
            launches: self.launches,
            tally: self.tally,
            mem: self.mem,
            allocated_bytes: self.allocated,
            partition_faults: self.partition_faults,
            partition_evictions: self.partition_evictions,
            transfer_ms: self.transfer_ms,
            push_steps: self.push_steps,
            pull_steps: self.pull_steps,
            pushed_edges: self.pushed_edges,
            pulled_edges: self.pulled_edges,
            exchange_ms: self.exchange_ms,
            boundary_nodes: self.boundary_nodes,
            sync_steps: self.sync_steps,
            faults_injected: self.faults_injected,
            retries: self.retries,
            backoff_ms: self.backoff_ms,
        }
    }
}

/// Aggregated result of a simulated run.
///
/// `PartialEq` compares every counter, including the floating-point cost
/// fields — the simulator is bit-deterministic, so two runs of the same
/// query on the same starting state compare equal. The concurrency suite
/// relies on this to prove scheduling never changes simulated work.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunStats {
    /// Estimated elapsed time, milliseconds.
    pub est_ms: f64,
    /// Modelled device cycles.
    pub cycles: f64,
    /// Kernel launches.
    pub launches: u64,
    /// Instruction tallies (all warps, all launches).
    pub tally: Tally,
    /// Memory counters.
    pub mem: MemStats,
    /// Resident allocation at the end of the run.
    pub allocated_bytes: usize,
    /// Out-of-core partitions faulted onto the device (0 for in-core runs).
    pub partition_faults: u64,
    /// Out-of-core partitions evicted to make room (0 for in-core runs).
    pub partition_evictions: u64,
    /// Milliseconds of host-link transfer streamed during the run (partition
    /// uploads, post-overlap; 0 for in-core runs). The up-front whole-graph
    /// upload of an in-core session is *not* included — that is
    /// `upload_ms` at the session layer.
    pub transfer_ms: f64,
    /// Push-mode (frontier out-edge) expansion levels executed. Maintained
    /// by direction-aware applications (BFS); 0 for the other apps.
    pub push_steps: u64,
    /// Pull-mode (unvisited in-edge scan) expansion levels executed —
    /// non-zero only when direction-optimizing BFS actually switched.
    pub pull_steps: u64,
    /// Candidate edges expanded by push levels (the frontier out-degree
    /// sum over push levels). With [`RunStats::pulled_edges`] this makes
    /// the direction-optimization saving observable: a pure-push run
    /// expands every reachable edge, an adaptive run strictly fewer.
    pub pushed_edges: u64,
    /// Compressed neighbours examined by pull levels before each lane's
    /// early exit on its first frontier parent.
    pub pulled_edges: u64,
    /// Milliseconds of device↔device interconnect time spent exchanging
    /// boundary frontier bitmaps between shards (0 for single-device runs).
    /// Reported separately from `est_ms` so sharding stays attributable:
    /// the kernel-time estimate is bitwise identical at any shard count.
    pub exchange_ms: f64,
    /// Distinct remotely-owned nodes discovered across all exchange steps
    /// (a node re-discovered in a later step counts again; within one step
    /// it counts once).
    pub boundary_nodes: u64,
    /// Bulk-synchronous step barriers executed by a sharded run (one per
    /// kernel launch on multi-shard sessions; 0 otherwise).
    pub sync_steps: u64,
    /// Transient faults injected by the active `FaultPlan` across every
    /// domain (alloc, transfer, exchange, query). 0 whenever no plan — or
    /// the empty plan — is installed.
    pub faults_injected: u64,
    /// Recovery rounds spent absorbing injected faults (one per fault that
    /// was retried rather than escalated).
    pub retries: u64,
    /// Modeled milliseconds of exponential backoff charged by those
    /// retries. Already folded into [`RunStats::transfer_ms`] /
    /// [`RunStats::exchange_ms`] (faults cost modeled time where they
    /// struck); reported separately so the overhead stays attributable.
    pub backoff_ms: f64,
}

impl RunStats {
    /// Instruction slots per class, for reporting.
    pub fn issues_by_class(&self) -> [u64; NUM_CLASSES] {
        self.tally.issues
    }

    /// All-zero statistics: what a query that never executed reports. The
    /// serving pool uses this for shed and failed submission slots so the
    /// per-query vector keeps its submission-order shape.
    pub fn zeroed() -> RunStats {
        RunStats {
            est_ms: 0.0,
            cycles: 0.0,
            launches: 0,
            tally: Tally::default(),
            mem: MemStats::default(),
            allocated_bytes: 0,
            partition_faults: 0,
            partition_evictions: 0,
            transfer_ms: 0.0,
            push_steps: 0,
            pull_steps: 0,
            pushed_edges: 0,
            pulled_edges: 0,
            exchange_ms: 0.0,
            boundary_nodes: 0,
            sync_steps: 0,
            faults_injected: 0,
            retries: 0,
            backoff_ms: 0.0,
        }
    }

    /// The statistics accumulated since `earlier` — a snapshot taken on the
    /// *same* device earlier in its life. This is how batched traversal
    /// attributes per-query cost while the graph stays resident on one
    /// device: snapshot before the query, subtract after.
    ///
    /// `allocated_bytes` is carried over as-is (residency is a level, not a
    /// flow).
    pub fn since(&self, earlier: &RunStats) -> RunStats {
        RunStats {
            est_ms: (self.est_ms - earlier.est_ms).max(0.0),
            cycles: (self.cycles - earlier.cycles).max(0.0),
            launches: self.launches.saturating_sub(earlier.launches),
            tally: self.tally.since(&earlier.tally),
            mem: self.mem.since(&earlier.mem),
            allocated_bytes: self.allocated_bytes,
            partition_faults: self
                .partition_faults
                .saturating_sub(earlier.partition_faults),
            partition_evictions: self
                .partition_evictions
                .saturating_sub(earlier.partition_evictions),
            transfer_ms: (self.transfer_ms - earlier.transfer_ms).max(0.0),
            push_steps: self.push_steps.saturating_sub(earlier.push_steps),
            pull_steps: self.pull_steps.saturating_sub(earlier.pull_steps),
            pushed_edges: self.pushed_edges.saturating_sub(earlier.pushed_edges),
            pulled_edges: self.pulled_edges.saturating_sub(earlier.pulled_edges),
            exchange_ms: (self.exchange_ms - earlier.exchange_ms).max(0.0),
            boundary_nodes: self.boundary_nodes.saturating_sub(earlier.boundary_nodes),
            sync_steps: self.sync_steps.saturating_sub(earlier.sync_steps),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
            retries: self.retries.saturating_sub(earlier.retries),
            backoff_ms: (self.backoff_ms - earlier.backoff_ms).max(0.0),
        }
    }

    /// A human-readable latency decomposition of this run under `config`:
    /// the per-class instruction-slot breakdown (issues, weighted cycles,
    /// share of weighted issue cycles) followed by the modeled time split —
    /// estimated kernel time, streamed transfer, shard exchange, and their
    /// sum (the modeled total). Formatting is fixed-precision, so the string
    /// is as deterministic as the numbers themselves.
    pub fn explain(&self, config: &DeviceConfig) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>12} {:>14} {:>7}\n",
            "class", "issues", "cycles", "share"
        ));
        let weighted = config.weighted_cycles(&self.tally).max(f64::MIN_POSITIVE);
        for c in config.class_breakdown(&self.tally) {
            out.push_str(&format!(
                "{:<12} {:>12} {:>14.1} {:>6.1}%\n",
                c.class,
                c.issues,
                c.cycles,
                100.0 * c.cycles / weighted
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>12} launches, {} warp slots, {} mem txns\n",
            "totals",
            self.launches,
            self.tally.total_issues(),
            self.mem.transactions
        ));
        if self.push_steps + self.pull_steps > 0 {
            out.push_str(&format!(
                "{:<12} {:>12} push ({} edges), {} pull ({} edges)\n",
                "levels", self.push_steps, self.pushed_edges, self.pull_steps, self.pulled_edges
            ));
        }
        if self.partition_faults + self.partition_evictions > 0 {
            out.push_str(&format!(
                "{:<12} {:>12} faults, {} evictions\n",
                "ooc", self.partition_faults, self.partition_evictions
            ));
        }
        if self.sync_steps > 0 {
            out.push_str(&format!(
                "{:<12} {:>12} sync steps, {} boundary nodes\n",
                "shard", self.sync_steps, self.boundary_nodes
            ));
        }
        if self.faults_injected > 0 || self.retries > 0 {
            out.push_str(&format!(
                "{:<12} {:>12} faults, {} retries, {:.6} ms backoff\n",
                "chaos", self.faults_injected, self.retries, self.backoff_ms
            ));
        }
        out.push_str(&format!("{:<12} {:>14.6} ms\n", "est", self.est_ms));
        out.push_str(&format!(
            "{:<12} {:>14.6} ms\n",
            "transfer", self.transfer_ms
        ));
        out.push_str(&format!(
            "{:<12} {:>14.6} ms\n",
            "exchange", self.exchange_ms
        ));
        out.push_str(&format!(
            "{:<12} {:>14.6} ms\n",
            "modeled",
            self.est_ms + self.transfer_ms + self.exchange_ms
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tally::OpClass;

    fn launch(issues: u64, txns: u64, warps: usize) -> IterationCost {
        let mut t = Tally::new(32);
        for _ in 0..issues {
            t.issue(OpClass::Handle, 32);
        }
        let mem = MemStats {
            transactions: txns,
            ..Default::default()
        };
        IterationCost {
            tally: t,
            mem,
            warps,
            max_warp_cycles: (issues / warps.max(1) as u64) as f64 * 2.0,
        }
    }

    #[test]
    fn compute_bound_launch() {
        let mut d = Device::new(DeviceConfig::titan_v_scaled(1 << 30));
        d.account_launch(&launch(8_000, 10, 80));
        // 8000 Handle issues × 2 cycles / 80 SMs = 200 > 10 / 4.2 memory.
        assert!((d.stats().cycles - 200.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_launch() {
        let mut d = Device::new(DeviceConfig::titan_v_scaled(1 << 30));
        d.account_launch(&launch(100, 42_000, 80));
        assert!((d.stats().cycles - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn small_launch_floored_by_busiest_warp() {
        let mut d = Device::new(DeviceConfig::titan_v_scaled(1 << 30));
        let mut c = launch(50, 0, 1);
        c.max_warp_cycles = 100.0;
        d.account_launch(&c);
        assert!(d.stats().cycles >= 100.0);
    }

    #[test]
    fn launch_overhead_accumulates() {
        let cfg = DeviceConfig::titan_v_scaled(1 << 30);
        let mut d = Device::new(cfg);
        for _ in 0..100 {
            d.account_launch(&launch(1, 0, 1));
        }
        assert!(d.elapsed_ms() >= 100.0 * cfg.launch_overhead_us / 1e3);
    }

    #[test]
    fn oom_detection() {
        let mut d = Device::new(DeviceConfig::titan_v_scaled(1000));
        assert!(d.alloc(600).is_ok());
        assert!(d.alloc(300).is_ok());
        let err = d.alloc(200).unwrap_err();
        assert_eq!(err.capacity, 1000);
        assert!(err.to_string().contains("out of device memory"));
        // Allocation state unchanged after failure.
        assert_eq!(d.allocated(), 900);
    }

    #[test]
    fn free_returns_capacity_for_reuse() {
        let mut d = Device::new(DeviceConfig::titan_v_scaled(1000));
        d.alloc(900).unwrap();
        assert!(d.alloc(200).is_err());
        d.free(400);
        assert_eq!(d.allocated(), 500);
        assert!(d.alloc(200).is_ok());
        assert_eq!(d.allocated(), 700);
    }

    #[test]
    fn stream_counters_accumulate_and_subtract() {
        let mut d = Device::new(DeviceConfig::titan_v_scaled(1 << 20));
        let before = d.stats();
        d.charge_partition_fault(1.5);
        d.charge_partition_fault(0.5);
        d.charge_partition_eviction();
        let s = d.stats().since(&before);
        assert_eq!(s.partition_faults, 2);
        assert_eq!(s.partition_evictions, 1);
        assert!((s.transfer_ms - 2.0).abs() < 1e-12);
        // The estimated execution time is unaffected: transfer is reported
        // separately so the cost stays attributable.
        assert_eq!(s.est_ms, 0.0);
    }

    #[test]
    fn direction_counters_accumulate_and_subtract() {
        let mut d = Device::new(DeviceConfig::titan_v_scaled(1 << 20));
        let before = d.stats();
        d.charge_push_step(100);
        d.charge_push_step(40);
        d.charge_pull_step(7);
        let s = d.stats().since(&before);
        assert_eq!(s.push_steps, 2);
        assert_eq!(s.pushed_edges, 140);
        assert_eq!(s.pull_steps, 1);
        assert_eq!(s.pulled_edges, 7);
        // Direction bookkeeping is host-side: it never changes the
        // simulated execution estimate.
        assert_eq!(s.est_ms, 0.0);
        // query_view zeroes them like every other counter.
        assert_eq!(d.query_view().stats().push_steps, 0);
    }

    #[test]
    fn exchange_counters_accumulate_and_subtract() {
        let mut d = Device::new(DeviceConfig::titan_v_scaled(1 << 20));
        let before = d.stats();
        d.charge_sync_step();
        d.charge_exchange(0.75, 100);
        d.charge_sync_step();
        d.charge_exchange(0.25, 40);
        let s = d.stats().since(&before);
        assert_eq!(s.sync_steps, 2);
        assert_eq!(s.boundary_nodes, 140);
        assert!((s.exchange_ms - 1.0).abs() < 1e-12);
        // Exchange is charged host-side, like out-of-core transfer: the
        // estimated kernel time is untouched, so sharding stays attributable.
        assert_eq!(s.est_ms, 0.0);
        // query_view zeroes the exchange counters like every other counter.
        let v = d.query_view().stats();
        assert_eq!(v.exchange_ms, 0.0);
        assert_eq!(v.boundary_nodes, 0);
        assert_eq!(v.sync_steps, 0);
    }

    #[test]
    fn query_view_keeps_residency_and_zeroes_counters() {
        let cfg = DeviceConfig::titan_v_scaled(1 << 20);
        let mut d = cfg.new_device();
        d.alloc(4096).unwrap();
        d.account_launch(&launch(100, 50, 4));
        d.charge_partition_fault(0.25);

        let view = d.query_view();
        assert_eq!(view.allocated(), 4096);
        let s = view.stats();
        assert_eq!(s.launches, 0);
        assert_eq!(s.cycles, 0.0);
        assert_eq!(s.partition_faults, 0);
        assert_eq!(s.transfer_ms, 0.0);
        assert_eq!(s.allocated_bytes, 4096);

        // A query on the view reports bitwise what it would report on a
        // fresh device with the same residency — independent of the
        // original device's history.
        let mut fresh = cfg.new_device();
        fresh.alloc(4096).unwrap();
        let mut replay = d.query_view();
        let c = launch(321, 77, 8);
        fresh.account_launch(&c);
        replay.account_launch(&c);
        assert_eq!(fresh.stats(), replay.stats());
    }

    #[test]
    fn empty_fault_plan_is_indistinguishable_from_no_plan() {
        let cfg = DeviceConfig::titan_v_scaled(1 << 20);
        let mut plain = cfg.new_device();
        let mut chaotic = cfg.new_device();
        chaotic.set_fault_plan(FaultPlan::empty());
        for d in [&mut plain, &mut chaotic] {
            d.alloc(4096).unwrap();
            d.chaos_gate(FaultDomain::Transfer, 1.0);
            d.charge_partition_fault(0.25);
            assert!(!d.inject_query_fault());
        }
        assert_eq!(plain.stats(), chaotic.stats());
        assert_eq!(chaotic.stats().faults_injected, 0);
        assert_eq!(chaotic.fault_plan(), None);
    }

    #[test]
    fn chaos_gate_charges_backoff_and_wasted_time() {
        let cfg = DeviceConfig::titan_v_scaled(1 << 20);
        let mut d = cfg.new_device();
        let mut plan = FaultPlan::empty();
        plan.seed = 11;
        plan.transfer = gcgt_chaos::FaultRate::new(1000, 2); // always fail, 2-bursts
        plan.exchange = gcgt_chaos::FaultRate::new(1000, 2);
        d.set_fault_plan(plan);

        d.chaos_gate(FaultDomain::Transfer, 0.5);
        let s = d.stats();
        // A 2-burst at rate 1000‰ always injects exactly 2 faults per gate.
        assert_eq!(s.faults_injected, 2);
        assert_eq!(s.retries, 2);
        let backoff = plan.retry.backoff_ms(1) + plan.retry.backoff_ms(2);
        assert!((s.backoff_ms - backoff).abs() < 1e-12);
        assert!((s.transfer_ms - (backoff + 2.0 * 0.5)).abs() < 1e-12);
        assert_eq!(s.exchange_ms, 0.0);

        // Exchange-domain recovery charges the interconnect, not the link.
        d.chaos_gate(FaultDomain::Exchange, 0.25);
        let s = d.stats();
        assert!((s.exchange_ms - (backoff + 2.0 * 0.25)).abs() < 1e-12);
        // Kernel-time estimate is never touched by recovery.
        assert_eq!(s.est_ms, 0.0);
    }

    #[test]
    fn chaos_gate_exhausts_with_typed_panic() {
        let cfg = DeviceConfig::titan_v_scaled(1 << 20);
        let mut d = cfg.new_device();
        let mut plan = FaultPlan::empty();
        plan.transfer = gcgt_chaos::FaultRate::new(1000, 8); // burst > budget
        d.set_fault_plan(plan);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.chaos_gate(FaultDomain::Transfer, 0.0)
        }))
        .expect_err("budget must exhaust");
        let typed = payload
            .downcast::<TypedFailure>()
            .expect("typed chaos payload");
        assert_eq!(
            *typed,
            TypedFailure::FaultBudgetExhausted {
                domain: "transfer",
                failures: 5, // max_attempts (4) + the escalating failure
            }
        );
    }

    #[test]
    fn query_view_rederives_injector_per_track() {
        let cfg = DeviceConfig::titan_v_scaled(1 << 20);
        let mut d = cfg.new_device();
        let mut plan = FaultPlan::empty();
        plan.seed = 99;
        plan.query = gcgt_chaos::FaultRate::new(400, 1);
        d.set_fault_plan(plan);
        let verdicts = |d: &Device, track: u64| -> Vec<bool> {
            let mut base = d.clone();
            base.set_track(track);
            (0..32)
                .map(|_| base.query_view().inject_query_fault())
                .collect()
        };
        // Same track → same verdict every time (view re-derives, not
        // consumes); different tracks decorrelate.
        assert!(verdicts(&d, 3).iter().all(|&v| v == verdicts(&d, 3)[0]));
        let across: Vec<bool> = (0..64).map(|t| verdicts(&d, t)[0]).collect();
        assert!(across.iter().any(|&v| v));
        assert!(across.iter().any(|&v| !v));
    }

    #[test]
    fn elapsed_scales_with_clock() {
        let mut slow = Device::new(DeviceConfig {
            clock_ghz: 0.5,
            launch_overhead_us: 0.0,
            ..DeviceConfig::titan_v_scaled(1 << 30)
        });
        let mut fast = Device::new(DeviceConfig {
            clock_ghz: 2.0,
            launch_overhead_us: 0.0,
            ..DeviceConfig::titan_v_scaled(1 << 30)
        });
        let c = launch(8_000, 0, 80);
        slow.account_launch(&c);
        fast.account_launch(&c);
        assert!(slow.elapsed_ms() > 3.9 * fast.elapsed_ms());
    }
}
