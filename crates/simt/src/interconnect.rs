//! Device↔device interconnect model for sharded multi-GPU traversal.
//!
//! When the compressed graph is partitioned across several modeled devices,
//! each bulk-synchronous step ends with an all-to-all exchange of boundary
//! frontier bitmaps: every shard that discovered nodes owned by another
//! shard sends that destination a dense bitmap over its owned vertex range.
//! The exchange cost follows the same latency/bandwidth shape as the
//! host-link [`crate::PcieConfig`], with parameters for the two link classes
//! that matter in practice — NVLink-class peer links (tens of GB/s, ~2 µs
//! setup) and PCIe peer-to-peer (the host-link numbers).

/// Device↔device link parameters for the sharded frontier exchange.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterconnectConfig {
    /// Sustained per-link bandwidth in GB/s (10⁹ bytes per second).
    pub bandwidth_gb_s: f64,
    /// Per-message setup latency in microseconds — every shard-to-shard
    /// bitmap transfer pays one.
    pub latency_us: f64,
}

impl Default for InterconnectConfig {
    /// NVLink-class peer links — the configuration a multi-GPU node of the
    /// paper's era (DGX-style TITAN V / V100 boxes) would exchange over.
    fn default() -> Self {
        Self::nvlink()
    }
}

impl InterconnectConfig {
    /// NVLink 2.0-class peer link: ~40 GB/s effective per direction, ~2 µs
    /// message setup.
    pub fn nvlink() -> Self {
        Self {
            bandwidth_gb_s: 40.0,
            latency_us: 2.0,
        }
    }

    /// PCIe 3.0 x16 peer-to-peer: the same effective numbers as the default
    /// host link ([`crate::PcieConfig::default`]) — what sharding costs
    /// without a dedicated GPU fabric.
    pub fn pcie3() -> Self {
        Self {
            bandwidth_gb_s: 12.0,
            latency_us: 10.0,
        }
    }

    /// Milliseconds to exchange `bytes` of boundary bitmaps in `messages`
    /// shard-to-shard transfers.
    ///
    /// The model is `bytes / bandwidth + messages × latency`, with `bytes`
    /// in bytes, `bandwidth_gb_s` in 10⁹ bytes per second, `latency_us` in
    /// microseconds per message, and the result in **milliseconds** — the
    /// same formula (and units) as [`crate::PcieConfig::transfer_ms`], so
    /// exchange and host-link time compare directly.
    ///
    /// A step with nothing to say costs nothing: `messages == 0` or
    /// `bytes == 0` returns 0 — shards that discovered no remote nodes send
    /// no bitmap.
    pub fn exchange_ms(&self, bytes: usize, messages: usize) -> f64 {
        if messages == 0 || bytes == 0 {
            return 0.0;
        }
        bytes as f64 / (self.bandwidth_gb_s * 1e9) * 1e3 + messages as f64 * self.latency_us / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PcieConfig;

    #[test]
    fn formula_is_bandwidth_plus_per_message_latency() {
        // Pin the exact formula, mirroring the PcieConfig::transfer_ms pin:
        // bytes / (GB/s · 1e9) in ms, plus messages × latency_us / 1e3.
        let link = InterconnectConfig {
            bandwidth_gb_s: 40.0,
            latency_us: 2.0,
        };
        let ms = link.exchange_ms(2_000_000_000, 6);
        let want = 2_000_000_000.0 / (40.0 * 1e9) * 1e3 + 6.0 * 2.0 / 1e3;
        assert!((ms - want).abs() < 1e-12, "{ms} vs {want}");
        assert!((want - 50.012).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_means_no_exchange() {
        let link = InterconnectConfig::default();
        assert_eq!(link.exchange_ms(0, 0), 0.0);
        assert_eq!(link.exchange_ms(0, 5), 0.0);
    }

    #[test]
    fn zero_messages_means_no_exchange() {
        let link = InterconnectConfig::default();
        assert_eq!(link.exchange_ms(12 << 30, 0), 0.0);
    }

    #[test]
    fn cost_is_symmetric_in_the_pair_direction() {
        // The model has no notion of which shard sends: i→j and j→i with
        // the same bitmap size cost the same, so the all-to-all total is
        // independent of exchange orientation.
        let link = InterconnectConfig::nvlink();
        assert_eq!(
            link.exchange_ms(4096, 1).to_bits(),
            link.exchange_ms(4096, 1).to_bits()
        );
        // And it is additive over messages of equal size: one 2-message
        // exchange equals two 1-message exchanges of half the bytes.
        let two = link.exchange_ms(8192, 2);
        let split = link.exchange_ms(4096, 1) + link.exchange_ms(4096, 1);
        assert!((two - split).abs() < 1e-12);
    }

    #[test]
    fn messages_pay_latency_each() {
        let link = InterconnectConfig::default();
        let one = link.exchange_ms(1 << 20, 1);
        let many = link.exchange_ms(1 << 20, 100);
        assert!(many > one + 99.0 * link.latency_us / 1e3 - 1e-12);
    }

    #[test]
    fn nvlink_is_cheaper_than_pcie_peer_links() {
        let bytes = 64 << 20;
        let nv = InterconnectConfig::nvlink().exchange_ms(bytes, 12);
        let pcie = InterconnectConfig::pcie3().exchange_ms(bytes, 12);
        assert!(nv < pcie, "nvlink {nv} vs pcie {pcie}");
        // The pcie3 profile really is the host-link profile.
        let host = PcieConfig::default().transfer_ms(bytes, 12);
        assert!((pcie - host).abs() < 1e-12);
    }
}
