//! # gcgt-simt
//!
//! A deterministic SIMT (single-instruction, multiple-thread) execution
//! simulator — the substitute for the paper's NVIDIA TITAN V (see
//! DESIGN.md §1). It models exactly the quantities the paper's analysis is
//! about:
//!
//! * **warp steps / divergence** ([`Tally`], [`OpClass`]): lanes of a warp
//!   execute in lock-step; when lanes sit in different control branches the
//!   branch classes serialize into separate instruction slots, precisely the
//!   accounting of the paper's Figure 4 instruction-flow tables (reproduced
//!   bit-exactly by an integration test);
//! * **memory coalescing** ([`MemSim`]): per warp-step, the distinct
//!   128-byte lines touched by the active lanes become memory transactions;
//!   a small per-warp cache models the paper's "decode entirely in cache"
//!   property;
//! * **device cost** ([`Device`], [`DeviceConfig`]): a roofline model turns
//!   (instruction slots, transactions, atomics) into estimated kernel time,
//!   plus per-launch overhead and a device-memory capacity check for the
//!   OOM behaviour of Figures 8 and 15.
//!
//! Warps are simulated sequentially or in parallel on host threads
//! ([`parallel_warps`]); either way all *reported* numbers come from the
//! deterministic tallies, never from host wall-clock.
//!
//! ## Observability
//!
//! A [`Device`] optionally carries an [`ObserverHandle`]
//! ([`Device::set_observer`]): kernel launches and allocation changes are
//! reported as events with **modeled** timestamps ([`Device::modeled_ms`]),
//! and richer layers (level launchers, the out-of-core cache, the shard
//! exchange, the serving pool) emit their own spans through
//! [`Device::observer`]. The event types and the ready-made sinks
//! ([`obs::TraceRecorder`], [`obs::MetricsRegistry`]) live in the
//! dependency-free [`gcgt_obs`] crate, re-exported here as [`obs`]. With no
//! observer installed nothing is constructed and no reported number ever
//! changes.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]
pub mod device;
pub mod interconnect;
pub mod mem;
pub mod parallel;
pub mod pcie;
pub mod tally;
pub mod warp;

/// The observability event model and sinks (re-export of the dependency-free
/// `gcgt-obs` crate), so downstream crates reach `gcgt_simt::obs::…` without
/// their own dependency edge.
pub use gcgt_chaos as chaos;
pub use gcgt_obs as obs;

pub use device::{Device, DeviceConfig, IterationCost, OomError, RunStats};
pub use gcgt_chaos::{FaultDomain, FaultPlan, FaultRate, RetryPolicy, TypedFailure};
pub use gcgt_obs::{NullObserver, Observer, ObserverHandle};
pub use interconnect::InterconnectConfig;
pub use mem::{MemSim, MemStats, Space};
pub use parallel::parallel_warps;
pub use pcie::PcieConfig;
pub use tally::{OpClass, Tally};
pub use warp::WarpSim;
