//! Device-memory model: 128-byte line granularity, per-step coalescing and
//! a small per-warp cache.
//!
//! Each warp step that touches memory presents the byte addresses accessed
//! by its active lanes; the distinct lines among them (after cache
//! filtering) become *memory transactions* — the paper's dominant cost
//! ("these operations require device memory accesses, which are the major
//! cost considered in the context of GPU-based graph processing").
//! Uncoalesced patterns (lanes on far-apart addresses, as in the intuitive
//! Algorithm 1) therefore cost up to `warp_width` transactions per step,
//! while the cooperative patterns of Algorithms 2–4 cost one or two.

/// Logical address spaces. Each space lives at a disjoint base so accesses
/// to, say, the visited bitmap never alias the compressed graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum Space {
    /// The graph structure (CGR bit array or CSR arrays).
    Graph = 0,
    /// CSR row offsets (kept separate from column indices for coalescing).
    Offsets = 1,
    /// Frontier queues.
    Frontier = 2,
    /// Visited bitmap / status labels.
    Visited = 3,
    /// Per-node values (depths, component ids, σ/δ, ranks).
    Labels = 4,
    /// Output queue.
    Output = 5,
}

impl Space {
    /// Maps `(space, byte offset)` to a global simulated address.
    #[inline]
    pub fn addr(self, offset: u64) -> u64 {
        ((self as u64) << 44) | offset
    }
}

/// Memory-traffic counters for one warp (or a merge of warps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// 128-byte transactions actually sent to device memory.
    pub transactions: u64,
    /// Line touches absorbed by the per-warp cache.
    pub cache_hits: u64,
    /// Warp steps that touched memory.
    pub mem_steps: u64,
    /// Sum over mem steps of distinct lines touched (pre-cache) — the
    /// coalescing quality denominator.
    pub lines_touched: u64,
}

impl MemStats {
    /// Fraction of line touches served by the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.transactions + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Average distinct lines per memory step (1.0 = perfectly coalesced).
    pub fn lines_per_step(&self) -> f64 {
        if self.mem_steps == 0 {
            0.0
        } else {
            self.lines_touched as f64 / self.mem_steps as f64
        }
    }

    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &MemStats) {
        self.transactions += other.transactions;
        self.cache_hits += other.cache_hits;
        self.mem_steps += other.mem_steps;
        self.lines_touched += other.lines_touched;
    }

    /// The counters accumulated since `earlier` (a previous snapshot of the
    /// same counter set).
    pub fn since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            transactions: self.transactions.saturating_sub(earlier.transactions),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            mem_steps: self.mem_steps.saturating_sub(earlier.mem_steps),
            lines_touched: self.lines_touched.saturating_sub(earlier.lines_touched),
        }
    }
}

/// Per-warp memory simulator: coalescing plus a direct-mapped line cache
/// (GPU L1/L2 stand-in; direct-mapped keeps the simulation deterministic
/// and cheap while capturing the "decode stays in cache" behaviour).
#[derive(Clone, Debug)]
pub struct MemSim {
    line_shift: u32,
    /// Direct-mapped cache: slot -> line id (u64::MAX = empty).
    cache: Box<[u64]>,
    cache_mask: u64,
    stats: MemStats,
    /// Scratch: lines of the current step (small, sorted-dedup).
    scratch: Vec<u64>,
}

impl MemSim {
    /// Creates a simulator with 128-byte lines and `cache_lines` slots
    /// (rounded up to a power of two, minimum 1).
    pub fn new(cache_lines: usize) -> Self {
        let slots = cache_lines.next_power_of_two().max(1);
        Self {
            line_shift: 7, // 128-byte lines
            cache: vec![u64::MAX; slots].into_boxed_slice(),
            cache_mask: slots as u64 - 1,
            stats: MemStats::default(),
            scratch: Vec::with_capacity(64),
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_shift
    }

    /// Simulates one warp step touching the given lane addresses. Returns
    /// the number of transactions issued (post-cache).
    pub fn access_step<I: IntoIterator<Item = u64>>(&mut self, addrs: I) -> u64 {
        self.scratch.clear();
        for a in addrs {
            self.scratch.push(a >> self.line_shift);
        }
        if self.scratch.is_empty() {
            return 0;
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        self.stats.mem_steps += 1;
        self.stats.lines_touched += self.scratch.len() as u64;
        let mut txns = 0;
        for i in 0..self.scratch.len() {
            let line = self.scratch[i];
            if self.lookup_insert(line) {
                self.stats.cache_hits += 1;
            } else {
                txns += 1;
            }
        }
        self.stats.transactions += txns;
        txns
    }

    /// A single-lane access (e.g. an atomic's cache line).
    pub fn access_one(&mut self, addr: u64) -> u64 {
        self.access_step(std::iter::once(addr))
    }

    /// Accesses a byte range as consecutive lines (e.g. a warp cooperatively
    /// streaming a segment).
    pub fn access_range(&mut self, start: u64, bytes: u64) -> u64 {
        let lb = self.line_bytes();
        let shift = self.line_shift;
        let first = start / lb;
        let last = (start + bytes.max(1) - 1) / lb;
        self.access_step((first..=last).map(move |l| l << shift))
    }

    /// True if the line was cached (and refreshes/installs it).
    #[inline]
    fn lookup_insert(&mut self, line: u64) -> bool {
        let slot = (line & self.cache_mask) as usize;
        if self.cache[slot] == line {
            true
        } else {
            self.cache[slot] = line;
            false
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_access_is_one_transaction() {
        let mut m = MemSim::new(64);
        // 32 lanes reading consecutive 4-byte words: one 128-byte line.
        let txns = m.access_step((0..32u64).map(|i| Space::Frontier.addr(4 * i)));
        assert_eq!(txns, 1);
    }

    #[test]
    fn scattered_access_costs_one_line_each() {
        let mut m = MemSim::new(0); // no cache
        let txns = m.access_step((0..8u64).map(|i| Space::Visited.addr(100_000 * i)));
        assert_eq!(txns, 8);
        assert_eq!(m.stats().lines_per_step(), 8.0);
    }

    #[test]
    fn cache_absorbs_repeats() {
        let mut m = MemSim::new(64);
        assert_eq!(m.access_one(Space::Graph.addr(10)), 1);
        assert_eq!(m.access_one(Space::Graph.addr(20)), 0); // same line
        assert_eq!(m.stats().cache_hits, 1);
        assert_eq!(m.stats().transactions, 1);
    }

    #[test]
    fn spaces_do_not_alias() {
        let mut m = MemSim::new(64);
        assert_eq!(m.access_one(Space::Graph.addr(0)), 1);
        assert_eq!(m.access_one(Space::Visited.addr(0)), 1);
        assert_eq!(m.stats().transactions, 2);
    }

    #[test]
    fn direct_mapped_eviction() {
        let mut m = MemSim::new(2); // 2 slots
        let a = Space::Graph.addr(0); // line 0 -> slot 0
        let b = Space::Graph.addr(2 * 128); // line 2 -> slot 0 (conflict)
        assert_eq!(m.access_one(a), 1);
        assert_eq!(m.access_one(b), 1); // evicts a
        assert_eq!(m.access_one(a), 1); // miss again
        assert_eq!(m.stats().cache_hits, 0);
    }

    #[test]
    fn access_range_covers_lines() {
        let mut m = MemSim::new(0);
        // 300 bytes starting at byte 100 → lines 0,1,2,3 → wait: bytes
        // 100..400 → lines 0..=3 is wrong: 100/128=0, 399/128=3 → 4 lines.
        let txns = m.access_range(Space::Graph.addr(100), 300);
        assert_eq!(txns, 4);
    }

    #[test]
    fn hit_rate_and_merge() {
        let mut a = MemStats {
            transactions: 3,
            cache_hits: 1,
            mem_steps: 2,
            lines_touched: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.transactions, 6);
        assert!((a.cache_hit_rate() - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_step_costs_nothing() {
        let mut m = MemSim::new(8);
        assert_eq!(m.access_step(std::iter::empty()), 0);
        assert_eq!(m.stats().mem_steps, 0);
    }
}
