//! Host-side parallel execution of independent warps.
//!
//! Warps within one kernel launch are independent in the simulator (their
//! tallies and candidate outputs are merged afterwards in warp-id order), so
//! they can run on host threads for wall-clock speed without affecting any
//! reported number. Work is distributed by an atomic cursor; results land in
//! index order, so the merge — and therefore every statistic — is
//! deterministic regardless of thread interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(0..count)` across host threads, returning results in index order.
///
/// `f` must be deterministic per index. With `count` small the work runs
/// inline to avoid thread spawn overhead.
pub fn parallel_warps<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    const INLINE_THRESHOLD: usize = 8;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if count <= INLINE_THRESHOLD || threads == 1 {
        return (0..count).map(f).collect();
    }

    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    let cursor = AtomicUsize::new(0);
    let slots_ptr = SendPtr(slots.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(count) {
            let f = &f;
            let cursor = &cursor;
            let slots_ptr = &slots_ptr;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                // SAFETY: each index is claimed exactly once by the atomic
                // cursor, so no two threads write the same slot, and the
                // scope joins all threads before `slots` is read.
                unsafe {
                    *slots_ptr.0.add(i) = Some(value);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every warp index must be produced"))
        .collect()
}

/// Raw-pointer wrapper that asserts cross-thread sendability for the
/// disjoint-slot write pattern above.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        let out = parallel_warps(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn small_counts_run_inline() {
        let out = parallel_warps(3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn zero_count() {
        let out: Vec<usize> = parallel_warps(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let a = parallel_warps(500, |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let b = parallel_warps(500, |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_closure_results_correct() {
        let out = parallel_warps(64, |i| {
            let mut acc = 0u64;
            for k in 0..1000 {
                acc = acc.wrapping_add((i as u64).wrapping_mul(k));
            }
            acc
        });
        let expect: Vec<u64> = (0..64)
            .map(|i| {
                let mut acc = 0u64;
                for k in 0..1000 {
                    acc = acc.wrapping_add((i as u64).wrapping_mul(k));
                }
                acc
            })
            .collect();
        assert_eq!(out, expect);
    }
}
