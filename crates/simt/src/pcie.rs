//! PCIe transfer model (Section 3.2 / Appendix A).
//!
//! The paper's second argument for CGR: "Even when the compressed graph
//! cannot entirely reside in the device memory, CGR reduces the PCIe
//! transfer cost since we can directly move the compressed adjacency lists
//! to GPUs and process them without decompression in the device memory."
//! Appendix A puts host↔device bandwidth "typically below 16 GB per
//! second" — one to two orders below device-memory bandwidth, so transfer
//! time scales almost linearly with structure size, i.e. with the
//! compression rate.

/// Host↔device link parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcieConfig {
    /// Sustained bandwidth in GB/s (PCIe 3.0 x16 ≈ 12 effective).
    pub bandwidth_gb_s: f64,
    /// Per-transfer setup latency in microseconds.
    pub latency_us: f64,
}

impl Default for PcieConfig {
    fn default() -> Self {
        Self {
            bandwidth_gb_s: 12.0,
            latency_us: 10.0,
        }
    }
}

impl PcieConfig {
    /// Milliseconds to move `bytes` across the link in `chunks` transfers.
    pub fn transfer_ms(&self, bytes: usize, chunks: usize) -> f64 {
        let chunks = chunks.max(1) as f64;
        bytes as f64 / (self.bandwidth_gb_s * 1e9) * 1e3 + chunks * self.latency_us / 1e3
    }

    /// Transfer-time ratio of an uncompressed structure over a compressed
    /// one of the same graph — approaches the compression rate for large
    /// transfers.
    pub fn speedup(&self, uncompressed_bytes: usize, compressed_bytes: usize) -> f64 {
        self.transfer_ms(uncompressed_bytes, 1) / self.transfer_ms(compressed_bytes, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_term_dominates_large_transfers() {
        let p = PcieConfig::default();
        // 12 GB at 12 GB/s ≈ 1000 ms.
        let ms = p.transfer_ms(12 << 30, 1);
        assert!((ms - 1073.7).abs() < 1.0, "{ms}");
    }

    #[test]
    fn latency_dominates_tiny_transfers() {
        let p = PcieConfig::default();
        let ms = p.transfer_ms(64, 1);
        assert!(ms > 0.009 && ms < 0.011, "{ms}");
    }

    #[test]
    fn speedup_approaches_compression_rate() {
        let p = PcieConfig::default();
        let s = p.speedup(1 << 30, (1 << 30) / 10);
        assert!(s > 9.0 && s < 10.1, "{s}");
    }

    #[test]
    fn chunked_transfers_pay_latency_per_chunk() {
        let p = PcieConfig::default();
        let one = p.transfer_ms(1 << 20, 1);
        let many = p.transfer_ms(1 << 20, 100);
        assert!(many > one + 0.9);
    }
}
