//! PCIe transfer model (Section 3.2 / Appendix A).
//!
//! The paper's second argument for CGR: "Even when the compressed graph
//! cannot entirely reside in the device memory, CGR reduces the PCIe
//! transfer cost since we can directly move the compressed adjacency lists
//! to GPUs and process them without decompression in the device memory."
//! Appendix A puts host↔device bandwidth "typically below 16 GB per
//! second" — one to two orders below device-memory bandwidth, so transfer
//! time scales almost linearly with structure size, i.e. with the
//! compression rate.

/// Host↔device link parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcieConfig {
    /// Sustained bandwidth in GB/s (PCIe 3.0 x16 ≈ 12 effective).
    pub bandwidth_gb_s: f64,
    /// Per-transfer setup latency in microseconds.
    pub latency_us: f64,
}

impl Default for PcieConfig {
    fn default() -> Self {
        Self {
            bandwidth_gb_s: 12.0,
            latency_us: 10.0,
        }
    }
}

impl PcieConfig {
    /// Milliseconds to move `bytes` across the link in `chunks` transfers.
    ///
    /// The model is `bytes / bandwidth + chunks × latency`, with `bytes` in
    /// bytes, `bandwidth_gb_s` in 10⁹ bytes per second, `latency_us` in
    /// microseconds per chunk, and the result in **milliseconds**. Every
    /// chunk pays one setup latency, so splitting a transfer never makes it
    /// cheaper — chunking exists so out-of-core streaming can overlap
    /// partial uploads with decode.
    ///
    /// `chunks == 0` means "no transfer happened" and returns 0 regardless
    /// of `bytes` (it used to silently behave as one chunk).
    pub fn transfer_ms(&self, bytes: usize, chunks: usize) -> f64 {
        if chunks == 0 {
            return 0.0;
        }
        bytes as f64 / (self.bandwidth_gb_s * 1e9) * 1e3 + chunks as f64 * self.latency_us / 1e3
    }

    /// Transfer-time ratio of an uncompressed structure over a compressed
    /// one of the same graph, both moved in the **same** number of `chunks`
    /// (it used to hardcode one chunk, silently ignoring chunked-transfer
    /// latency). Approaches the compression rate for large transfers; for
    /// many tiny chunks the per-chunk latency dominates both sides and the
    /// ratio decays toward 1.
    ///
    /// # Panics
    /// Panics when `chunks == 0` — a zero-chunk transfer takes 0 ms on both
    /// sides and has no meaningful ratio.
    pub fn speedup(
        &self,
        uncompressed_bytes: usize,
        compressed_bytes: usize,
        chunks: usize,
    ) -> f64 {
        assert!(chunks > 0, "speedup of a zero-chunk transfer is undefined");
        self.transfer_ms(uncompressed_bytes, chunks) / self.transfer_ms(compressed_bytes, chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_term_dominates_large_transfers() {
        let p = PcieConfig::default();
        // 12 GB at 12 GB/s ≈ 1000 ms.
        let ms = p.transfer_ms(12 << 30, 1);
        assert!((ms - 1073.7).abs() < 1.0, "{ms}");
    }

    #[test]
    fn latency_dominates_tiny_transfers() {
        let p = PcieConfig::default();
        let ms = p.transfer_ms(64, 1);
        assert!(ms > 0.009 && ms < 0.011, "{ms}");
    }

    #[test]
    fn speedup_approaches_compression_rate() {
        let p = PcieConfig::default();
        let s = p.speedup(1 << 30, (1 << 30) / 10, 1);
        assert!(s > 9.0 && s < 10.1, "{s}");
    }

    #[test]
    fn speedup_accounts_chunk_latency() {
        // Pin the formula: both sides pay `chunks` setup latencies, so the
        // ratio is (U/bw + c·lat) / (C/bw + c·lat) — strictly below the
        // 1-chunk ratio and decaying toward 1 as chunks grow.
        let p = PcieConfig {
            bandwidth_gb_s: 12.0,
            latency_us: 10.0,
        };
        let (u, c) = (1usize << 30, (1usize << 30) / 10);
        let chunks = 50_000;
        let want = p.transfer_ms(u, chunks) / p.transfer_ms(c, chunks);
        let got = p.speedup(u, c, chunks);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        assert!(got < p.speedup(u, c, 1));
        assert!(got > 1.0);
    }

    #[test]
    #[should_panic(expected = "zero-chunk")]
    fn speedup_of_zero_chunks_is_rejected() {
        let _ = PcieConfig::default().speedup(1 << 20, 1 << 10, 0);
    }

    #[test]
    fn chunked_transfers_pay_latency_per_chunk() {
        let p = PcieConfig::default();
        let one = p.transfer_ms(1 << 20, 1);
        let many = p.transfer_ms(1 << 20, 100);
        assert!(many > one + 0.9);
    }

    #[test]
    fn zero_chunks_means_no_transfer() {
        let p = PcieConfig::default();
        assert_eq!(p.transfer_ms(0, 0), 0.0);
        assert_eq!(p.transfer_ms(12 << 30, 0), 0.0);
    }

    #[test]
    fn formula_is_bandwidth_plus_per_chunk_latency() {
        // Pin the exact latency/bandwidth formula: bytes / (GB/s · 1e9) in
        // ms, plus chunks × latency_us / 1e3.
        let p = PcieConfig {
            bandwidth_gb_s: 12.0,
            latency_us: 10.0,
        };
        let ms = p.transfer_ms(3_000_000_000, 4);
        let want = 3_000_000_000.0 / (12.0 * 1e9) * 1e3 + 4.0 * 10.0 / 1e3;
        assert!((ms - want).abs() < 1e-12, "{ms} vs {want}");
        assert!((want - 250.04).abs() < 1e-9);
    }
}
