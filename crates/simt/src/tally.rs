//! Warp instruction-slot accounting (the Figure 4 step model).
//!
//! Every serialized warp step is tallied under an [`OpClass`]. Lanes in
//! different control branches of the same logical round must be issued as
//! separate steps by the kernel — that *is* warp divergence, and it is what
//! the Two-Phase and Task-Stealing strategies reduce.

/// Classes of warp instructions. The decode/handle classes correspond to the
/// colored cells of the paper's Figure 4; the rest cover synchronization,
/// scan, atomics and the warp-centric decoding rounds of Algorithm 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpClass {
    /// Reading `degNum` / `itvNum` / `segNum` headers.
    Header = 0,
    /// Decoding one interval (gap + length) — Figure 4's yellow cells.
    ItvDecode = 1,
    /// Decoding one residual gap — Figure 4's blue cells.
    ResDecode = 2,
    /// Handling one neighbour (visited check + output) — the green cells.
    Handle = 3,
    /// Warp-level exclusive scan.
    Scan = 4,
    /// Register shuffle / broadcast.
    Shfl = 5,
    /// Vote/synchronization primitives (`syncAny`, `syncAll`, `syncNone`).
    Sync = 6,
    /// Atomic read-modify-write on global memory.
    Atomic = 7,
    /// One speculative-start round of parallel VLC decoding (Algorithm 4).
    ParDecode = 8,
    /// Pointer-jumping step (connected components).
    Jump = 9,
    /// Anything else (label updates, σ/δ accumulation, ...).
    Generic = 10,
    /// One table-driven VLC decode: a precomputed 16-bit-window decode
    /// table resolves the codeword(s) in a single shared-memory probe,
    /// replacing the serial bit-scan an [`OpClass::ItvDecode`] /
    /// [`OpClass::ResDecode`] step otherwise models. Charged by
    /// [`crate::WarpSim`] when table decoding is enabled — the step
    /// *schedule* is unchanged (one slot per decode step, so Figure 4
    /// step counts are preserved), only the per-slot cost drops.
    TableDecode = 11,
    /// Chasing one hop of a GCGR v3 reference chain: reading the
    /// referenced node's prologue to materialize copied neighbours. One
    /// issue per hop, charged at cursor-load time — copied values then
    /// stream out as free [`crate::OpClass::Handle`]-only emissions, which
    /// is exactly the bandwidth story of reference compression.
    RefChase = 12,
}

impl OpClass {
    /// The variant name, for reports and trace events.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Header => "Header",
            OpClass::ItvDecode => "ItvDecode",
            OpClass::ResDecode => "ResDecode",
            OpClass::Handle => "Handle",
            OpClass::Scan => "Scan",
            OpClass::Shfl => "Shfl",
            OpClass::Sync => "Sync",
            OpClass::Atomic => "Atomic",
            OpClass::ParDecode => "ParDecode",
            OpClass::Jump => "Jump",
            OpClass::Generic => "Generic",
            OpClass::TableDecode => "TableDecode",
            OpClass::RefChase => "RefChase",
        }
    }
}

/// Number of op classes.
pub const NUM_CLASSES: usize = 13;

/// All classes, indexable by `OpClass as usize`.
pub const ALL_CLASSES: [OpClass; NUM_CLASSES] = [
    OpClass::Header,
    OpClass::ItvDecode,
    OpClass::ResDecode,
    OpClass::Handle,
    OpClass::Scan,
    OpClass::Shfl,
    OpClass::Sync,
    OpClass::Atomic,
    OpClass::ParDecode,
    OpClass::Jump,
    OpClass::Generic,
    OpClass::TableDecode,
    OpClass::RefChase,
];

/// Instruction-slot tallies for one warp (or a merge of many warps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Warp instruction slots per class.
    pub issues: [u64; NUM_CLASSES],
    /// Sum of active lanes across all slots (utilization numerator).
    pub lane_work: u64,
    /// Warp width (denominator of utilization; 0 until first issue).
    pub width: u64,
}

impl Tally {
    /// An empty tally for a warp of the given width.
    pub fn new(width: usize) -> Self {
        Self {
            width: width as u64,
            ..Self::default()
        }
    }

    /// Records one warp instruction slot with `active` lanes participating.
    #[inline]
    pub fn issue(&mut self, class: OpClass, active: usize) {
        debug_assert!(active as u64 <= self.width.max(active as u64));
        self.issues[class as usize] += 1;
        self.lane_work += active as u64;
    }

    /// Total instruction slots across all classes.
    pub fn total_issues(&self) -> u64 {
        self.issues.iter().sum()
    }

    /// The step metric of the paper's Figure 4: interval decodes, residual
    /// decodes and neighbour handling (headers, scans and votes are not
    /// drawn as steps in the figure). Table-driven decode slots count too:
    /// a [`OpClass::TableDecode`] slot is the same scheduled decode step,
    /// just charged at the table-probe cost, so step counts are identical
    /// whether or not table decoding is enabled.
    pub fn figure4_steps(&self) -> u64 {
        self.issues[OpClass::ItvDecode as usize]
            + self.issues[OpClass::ResDecode as usize]
            + self.issues[OpClass::TableDecode as usize]
            + self.issues[OpClass::Handle as usize]
    }

    /// SIMT lane utilization in `[0, 1]`: active lanes over issued slots.
    pub fn utilization(&self) -> f64 {
        let total = self.total_issues();
        if total == 0 || self.width == 0 {
            0.0
        } else {
            self.lane_work as f64 / (total * self.width) as f64
        }
    }

    /// Accumulates another tally (e.g. merging warps of one kernel launch).
    pub fn merge(&mut self, other: &Tally) {
        for i in 0..NUM_CLASSES {
            self.issues[i] += other.issues[i];
        }
        self.lane_work += other.lane_work;
        self.width = self.width.max(other.width);
    }

    /// The counters accumulated since `earlier` (a previous snapshot of the
    /// same tally). Used to attribute per-query costs on a shared device.
    pub fn since(&self, earlier: &Tally) -> Tally {
        let mut out = *self;
        for i in 0..NUM_CLASSES {
            out.issues[i] = self.issues[i].saturating_sub(earlier.issues[i]);
        }
        out.lane_work = self.lane_work.saturating_sub(earlier.lane_work);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_accumulates_by_class() {
        let mut t = Tally::new(8);
        t.issue(OpClass::ItvDecode, 3);
        t.issue(OpClass::Handle, 8);
        t.issue(OpClass::Handle, 4);
        assert_eq!(t.issues[OpClass::ItvDecode as usize], 1);
        assert_eq!(t.issues[OpClass::Handle as usize], 2);
        assert_eq!(t.total_issues(), 3);
        assert_eq!(t.lane_work, 15);
    }

    #[test]
    fn figure4_metric_excludes_headers_and_scans() {
        let mut t = Tally::new(8);
        t.issue(OpClass::Header, 8);
        t.issue(OpClass::Scan, 8);
        t.issue(OpClass::Sync, 8);
        t.issue(OpClass::ResDecode, 2);
        t.issue(OpClass::Handle, 8);
        assert_eq!(t.figure4_steps(), 2);
    }

    #[test]
    fn utilization_bounds() {
        let mut t = Tally::new(8);
        assert_eq!(t.utilization(), 0.0);
        t.issue(OpClass::Handle, 8);
        assert!((t.utilization() - 1.0).abs() < 1e-12);
        t.issue(OpClass::Handle, 0);
        assert!((t.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Tally::new(8);
        a.issue(OpClass::Handle, 4);
        let mut b = Tally::new(8);
        b.issue(OpClass::Handle, 6);
        b.issue(OpClass::Atomic, 1);
        a.merge(&b);
        assert_eq!(a.issues[OpClass::Handle as usize], 2);
        assert_eq!(a.issues[OpClass::Atomic as usize], 1);
        assert_eq!(a.lane_work, 11);
    }
}
