//! The warp execution context handed to every simulated kernel: instruction
//! tallies, the memory model, and the warp-level primitives the paper's
//! pseudocode relies on (`exclusiveScan`, `shfl`, `syncAny`, voting).
//!
//! Kernels are written lane-vectorized: per logical round they operate on
//! small per-lane state arrays and report each serialized branch class as
//! one [`WarpSim::issue`]. Shared memory is plain host memory (its latency
//! is register-like on real GPUs and the paper treats warp communication as
//! effectively free), while every device-memory touch goes through
//! [`WarpSim::access`].

use crate::mem::{MemSim, MemStats};
use crate::tally::{OpClass, Tally};

/// Per-warp simulation context.
#[derive(Clone, Debug)]
pub struct WarpSim {
    width: usize,
    tally: Tally,
    mem: MemSim,
    table_decode: bool,
}

impl WarpSim {
    /// The widest warp the simulator supports. The cap is load-bearing, not
    /// cosmetic: [`WarpSim::ballot`] packs one lane per bit of a `u64`, so a
    /// 65-lane warp would shift past the mask and panic (debug) or silently
    /// drop lanes (release). Guarded here, once, with a typed assert.
    pub const MAX_WIDTH: usize = u64::BITS as usize;

    /// A warp of `width` lanes with a `cache_lines`-slot memory cache.
    ///
    /// # Panics
    /// Panics unless `1 <= width <= MAX_WIDTH` (64): ballot masks are `u64`.
    pub fn new(width: usize, cache_lines: usize) -> Self {
        assert!(
            (1..=Self::MAX_WIDTH).contains(&width),
            "warp width {width} out of range 1..={} (ballot packs one lane per u64 bit)",
            Self::MAX_WIDTH
        );
        Self {
            width,
            tally: Tally::new(width),
            mem: MemSim::new(cache_lines),
            table_decode: false,
        }
    }

    /// Enables (or disables) the table-decode cost model: with it on,
    /// [`OpClass::ItvDecode`] / [`OpClass::ResDecode`] slots are charged as
    /// [`OpClass::TableDecode`] — the kernel's serialized decode *schedule*
    /// is unchanged (one slot per decode step, so Figure 4 step counts are
    /// preserved), but each slot costs one shared-memory table probe
    /// instead of a serial bit-scan. Engines set this from
    /// [`crate::DeviceConfig::table_decode`]; kernels keep naming the
    /// logical class and never need to know.
    #[must_use]
    pub fn with_table_decode(mut self, on: bool) -> Self {
        self.table_decode = on;
        self
    }

    /// Whether decode slots are charged at the table-probe cost.
    #[inline]
    pub fn table_decode(&self) -> bool {
        self.table_decode
    }

    /// The class a slot is charged under: decode classes map to
    /// [`OpClass::TableDecode`] when table decoding is enabled.
    #[inline]
    fn charge_class(&self, class: OpClass) -> OpClass {
        match class {
            OpClass::ItvDecode | OpClass::ResDecode if self.table_decode => OpClass::TableDecode,
            other => other,
        }
    }

    /// Number of lanes.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Records one serialized warp step of `class` with `active` lanes.
    #[inline]
    pub fn issue(&mut self, class: OpClass, active: usize) {
        self.tally.issue(self.charge_class(class), active);
    }

    /// Records one warp step that also touches memory: the lane addresses
    /// are coalesced into transactions.
    #[inline]
    pub fn issue_mem<I: IntoIterator<Item = u64>>(
        &mut self,
        class: OpClass,
        active: usize,
        addrs: I,
    ) {
        self.tally.issue(self.charge_class(class), active);
        self.mem.access_step(addrs);
    }

    /// Memory access without an instruction slot (e.g. the extra lines of a
    /// multi-line cooperative load).
    #[inline]
    pub fn access<I: IntoIterator<Item = u64>>(&mut self, addrs: I) {
        self.mem.access_step(addrs);
    }

    /// Cooperative load of a contiguous byte range.
    #[inline]
    pub fn access_range(&mut self, start: u64, bytes: u64) {
        self.mem.access_range(start, bytes);
    }

    // --- warp primitives --------------------------------------------------

    /// The paper's `exclusiveScan`: prefix sums of one value per lane.
    /// Returns `(scatter, total)` — `scatter[i] = sum(vals[0..i])`.
    /// Costs one [`OpClass::Scan`] slot (log-depth shuffle scan on hardware;
    /// constant here, identically for every strategy).
    pub fn exclusive_scan(&mut self, vals: &[u32]) -> (Vec<u32>, u32) {
        debug_assert!(vals.len() <= self.width);
        // Scan/vote/shuffle primitives execute warp-wide on hardware: every
        // lane participates regardless of how many carry live values.
        self.issue(OpClass::Scan, self.width);
        let mut scatter = Vec::with_capacity(vals.len());
        let mut acc = 0u32;
        for &v in vals {
            scatter.push(acc);
            acc += v;
        }
        (scatter, acc)
    }

    /// The paper's `shfl`: broadcasts `vals[src_lane]` to all lanes.
    pub fn shfl<T: Copy>(&mut self, vals: &[T], src_lane: usize) -> T {
        self.issue(OpClass::Shfl, self.width);
        vals[src_lane]
    }

    /// The paper's `syncAny`: true if any lane's predicate holds.
    pub fn sync_any(&mut self, preds: &[bool]) -> bool {
        self.issue(OpClass::Sync, self.width);
        preds.iter().any(|&p| p)
    }

    /// `syncAll`: true if every lane's predicate holds (Algorithm 3).
    pub fn sync_all(&mut self, preds: &[bool]) -> bool {
        self.issue(OpClass::Sync, self.width);
        preds.iter().all(|&p| p)
    }

    /// `syncNone`: true if no lane's predicate holds (Algorithm 4's loop
    /// exit).
    pub fn sync_none(&mut self, preds: &[bool]) -> bool {
        self.issue(OpClass::Sync, self.width);
        !preds.iter().any(|&p| p)
    }

    /// Ballot: bitmask of lanes whose predicate holds. Lane indices are
    /// guaranteed `< MAX_WIDTH` by the constructor, so the per-lane shift
    /// can never overflow the `u64` mask.
    pub fn ballot(&mut self, preds: &[bool]) -> u64 {
        debug_assert!(preds.len() <= self.width);
        self.issue(OpClass::Sync, self.width);
        preds
            .iter()
            .enumerate()
            .fold(0u64, |m, (i, &p)| if p { m | (1u64 << i) } else { m })
    }

    /// One atomic RMW issued by a single lane on behalf of the warp
    /// (the `outQueue.atomicAdd` of Algorithm 1's contraction).
    pub fn atomic_add(&mut self, addr: u64) {
        self.tally.issue(OpClass::Atomic, 1);
        self.mem.access_one(addr);
    }

    // --- results ----------------------------------------------------------

    /// Instruction tallies so far.
    pub fn tally(&self) -> &Tally {
        &self.tally
    }

    /// Memory counters so far.
    pub fn mem_stats(&self) -> &MemStats {
        self.mem.stats()
    }

    /// Consumes the warp into its `(tally, mem)` counters.
    pub fn into_counters(self) -> (Tally, MemStats) {
        (self.tally, *self.mem.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Space;

    #[test]
    fn exclusive_scan_matches_definition() {
        let mut w = WarpSim::new(8, 16);
        let (scatter, total) = w.exclusive_scan(&[1, 0, 2, 0, 3]);
        assert_eq!(scatter, vec![0, 1, 1, 3, 3]);
        assert_eq!(total, 6);
        assert_eq!(w.tally().issues[OpClass::Scan as usize], 1);
    }

    #[test]
    fn shfl_broadcasts() {
        let mut w = WarpSim::new(4, 16);
        assert_eq!(w.shfl(&[10, 20, 30, 40], 2), 30);
    }

    #[test]
    fn votes() {
        let mut w = WarpSim::new(4, 16);
        assert!(w.sync_any(&[false, true, false, false]));
        assert!(!w.sync_all(&[false, true, true, true]));
        assert!(w.sync_none(&[false, false, false, false]));
        assert_eq!(w.ballot(&[true, false, true, false]), 0b0101);
        assert_eq!(w.tally().issues[OpClass::Sync as usize], 4);
    }

    #[test]
    fn issue_mem_coalesces() {
        let mut w = WarpSim::new(8, 16);
        w.issue_mem(
            OpClass::Handle,
            8,
            (0..8u64).map(|i| Space::Output.addr(4 * i)),
        );
        assert_eq!(w.mem_stats().transactions, 1);
        assert_eq!(w.tally().issues[OpClass::Handle as usize], 1);
    }

    #[test]
    fn atomic_counts_instruction_and_memory() {
        let mut w = WarpSim::new(8, 16);
        w.atomic_add(Space::Output.addr(0));
        assert_eq!(w.tally().issues[OpClass::Atomic as usize], 1);
        assert_eq!(w.mem_stats().transactions, 1);
    }

    #[test]
    #[should_panic(expected = "warp width")]
    fn zero_width_rejected() {
        let _ = WarpSim::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "warp width 65 out of range")]
    fn width_past_ballot_mask_rejected() {
        // Regression: ballot packs one lane per u64 bit, so a 65-lane warp
        // would overflow `1 << i` at lane 64. The constructor must refuse it
        // rather than let ballot panic (debug) or lose lanes (release).
        let _ = WarpSim::new(WarpSim::MAX_WIDTH + 1, 4);
    }

    #[test]
    fn table_decode_mode_charges_probe_slots() {
        // Same schedule, different charge class: decode slots become
        // TableDecode, everything else is untouched, and the Figure 4 step
        // count is identical either way.
        let mut w = WarpSim::new(8, 16).with_table_decode(true);
        w.issue(OpClass::ItvDecode, 4);
        w.issue_mem(
            OpClass::ResDecode,
            4,
            (0..4u64).map(|i| Space::Graph.addr(i * 512)),
        );
        w.issue(OpClass::Handle, 8);
        let t = w.tally();
        assert_eq!(t.issues[OpClass::ItvDecode as usize], 0);
        assert_eq!(t.issues[OpClass::ResDecode as usize], 0);
        assert_eq!(t.issues[OpClass::TableDecode as usize], 2);
        assert_eq!(t.issues[OpClass::Handle as usize], 1);
        assert_eq!(t.figure4_steps(), 3);
        assert!(w.table_decode());
        assert!(!WarpSim::new(8, 16).table_decode());
    }

    #[test]
    fn ballot_at_full_width_sets_the_top_bit() {
        // Lane 63 maps to bit 63 — the shift that makes MAX_WIDTH = 64 the
        // hard cap.
        let mut w = WarpSim::new(WarpSim::MAX_WIDTH, 16);
        let mut preds = vec![false; WarpSim::MAX_WIDTH];
        preds[0] = true;
        preds[63] = true;
        assert_eq!(w.ballot(&preds), (1u64 << 63) | 1);
    }
}
