//! Compression explorer: sweep the CGR parameters (Table 2) over your graph
//! and see where the rate/speed trade-off lands — a miniature of the
//! paper's Appendix D on any edge list.
//!
//! ```sh
//! cargo run --release --example compression_explorer [edge-list.txt]
//! ```

use gcgt::prelude::*;

fn main() {
    let graph = match std::env::args().nth(1) {
        Some(path) => {
            let g = edgelist::load(&path).expect("readable edge list");
            println!(
                "loaded {path}: {} nodes, {} edges",
                g.num_nodes(),
                g.num_edges()
            );
            g
        }
        None => {
            let g = social_graph(&SocialParams::ljournal_like(15_000), 5);
            println!(
                "no input given — using a synthetic social graph ({} nodes, {} edges)",
                g.num_nodes(),
                g.num_edges()
            );
            g
        }
    };

    println!("\n-- node reordering (Figure 13) --");
    let mut best: Option<(String, f64, Csr)> = None;
    for method in Reordering::figure13_sweep() {
        let perm = method.compute(&graph);
        let g = graph.permuted(&perm);
        let cgr = CgrGraph::encode(&g, &CgrConfig::paper_default());
        let rate = cgr.compression_rate();
        println!(
            "  {:<10} {:>6.2}x  ({:.2} bits/edge)",
            method.name(),
            rate,
            cgr.bits_per_edge()
        );
        if best.as_ref().map(|(_, r, _)| rate > *r).unwrap_or(true) {
            best = Some((method.name().to_string(), rate, g));
        }
    }
    let (best_name, _, ordered) = best.unwrap();
    println!("  → best ordering: {best_name}");

    println!("\n-- VLC scheme (Figure 11) --");
    for code in Code::FIGURE11_SWEEP {
        let cfg = CgrConfig {
            code,
            ..CgrConfig::paper_default()
        };
        let cgr = CgrGraph::encode(&ordered, &cfg);
        println!("  {:<7} {:>6.2}x", code.name(), cgr.compression_rate());
    }

    println!("\n-- minimum interval length (Figure 12) --");
    for min_itv in [Some(2u32), Some(3), Some(4), Some(5), Some(10), None] {
        let cfg = CgrConfig {
            min_interval_len: min_itv,
            ..CgrConfig::paper_default()
        };
        let cgr = CgrGraph::encode(&ordered, &cfg);
        let label = min_itv
            .map(|v| v.to_string())
            .unwrap_or_else(|| "inf".into());
        println!(
            "  {:<4} {:>6.2}x  (interval coverage {:.0}%)",
            label,
            cgr.compression_rate(),
            100.0 * cgr.stats().interval_coverage()
        );
    }

    println!("\n-- reference window (GCGR v3 copy lists) --");
    for window in [0u32, 4, 8, 16, 32, 64] {
        let cfg = CgrConfig::paper_default().with_ref_window(window);
        let cgr = CgrGraph::encode(&ordered, &cfg);
        let s = cgr.stats();
        println!(
            "  w={:<3} {:>6.2}x  ({:.2} bits/edge, {:.0}% nodes referencing, {:.0}% edges copied)",
            window,
            cgr.compression_rate(),
            cgr.bits_per_edge(),
            100.0 * s.ref_nodes as f64 / s.nodes.max(1) as f64,
            100.0 * s.ref_copied_edges as f64 / s.edges.max(1) as f64
        );
    }

    println!("\n-- autotuned code (per-dataset) --");
    let tuned = CgrConfig::autotune(&ordered);
    let cgr = CgrGraph::encode(&ordered, &tuned);
    println!(
        "  autotune picked {:<7} {:>6.2}x",
        tuned.code.name(),
        cgr.compression_rate()
    );

    println!("\n-- residual segment length (Figure 14) --");
    let device = DeviceConfig::titan_v_scaled(256 << 20);
    for seg in [Some(8u32), Some(16), Some(32), Some(64), Some(128)] {
        let session = Session::builder()
            .graph(ordered.clone())
            .compress(CgrConfig {
                segment_len_bytes: seg,
                ..CgrConfig::paper_default()
            })
            .device(device)
            .engine(EngineKind::Gcgt(Strategy::Full))
            .build()
            .unwrap();
        let ms = session.run(Bfs::from(0)).stats.est_ms;
        let cgr = session.cgr().unwrap();
        println!(
            "  {:>3}B {:>6.2}x  BFS {:.3} sim ms  (blank space {:.1}%)",
            seg.unwrap(),
            cgr.compression_rate(),
            ms,
            100.0 * cgr.stats().blank_fraction()
        );
    }
}
