//! Direction-optimizing traversal on compressed graphs.
//!
//! The GCGT engine historically only *pushed*: every level expands the
//! frontier's out-edges. On low-diameter graphs (social networks) a couple
//! of dense levels hold nearly all edges, and the Beamer-style *pull*
//! schedule — every unvisited node scans its own compressed adjacency and
//! stops at the first frontier parent — examines a fraction of them.
//! `DirectionMode::Adaptive` switches per level with the Ligra/Beamer
//! density heuristic (pull when the frontier's out-degree sum exceeds
//! `|E| / PULL_ALPHA`).
//!
//! Run with: `cargo run --release --example direction`

use gcgt::prelude::*;

fn main() {
    // A low-diameter, hub-heavy social graph. Pull requires symmetric
    // adjacency (stored neighbours double as in-neighbours), so the
    // session symmetrizes during preprocessing.
    let graph = social_graph(&SocialParams::twitter_like(20_000), 42);

    let run_with = |direction: DirectionMode| {
        let session = Session::builder()
            .graph(graph.clone())
            .symmetrize(true)
            .engine(EngineKind::Gcgt(Strategy::Full))
            .direction(direction)
            .build()
            .expect("graph fits the default device");
        session.run(Bfs::from(0))
    };

    let push = run_with(DirectionMode::Push);
    let adaptive = run_with(DirectionMode::Adaptive);
    assert_eq!(push.output.depth, adaptive.output.depth);

    println!(
        "BFS over {} nodes, alpha = {PULL_ALPHA}: both schedules reach {} nodes in {} levels\n",
        graph.num_nodes(),
        push.output.reached,
        push.output.levels
    );
    for (name, run) in [("push", &push), ("adaptive", &adaptive)] {
        let expanded = run.stats.pushed_edges + run.stats.pulled_edges;
        println!(
            "{name:>8}: {expanded:>9} edges expanded  ({} push / {} pull levels)  {:.3} sim ms",
            run.stats.push_steps, run.stats.pull_steps, run.stats.est_ms
        );
    }
    let saving = (push.stats.pushed_edges + push.stats.pulled_edges) as f64
        / (adaptive.stats.pushed_edges + adaptive.stats.pulled_edges) as f64;
    println!("\nadaptive expands {saving:.1}x fewer edges — identical answers, bitwise.");
}
