//! Memory-budget planning: for a given device capacity, how much graph can
//! each representation hold, and what does the compression cost at traversal
//! time? This walks the exact trade-off the paper's introduction motivates
//! (a 32 GB GV100 costs $9,000 — compression buys capacity instead).
//!
//! ```sh
//! cargo run --release --example memory_budget
//! ```

use gcgt::core::memory;
use gcgt::prelude::*;

fn main() {
    let budget: usize = 24 << 20; // a "24 MB device" at our scales
    println!("device budget: {} MB\n", budget >> 20);
    println!(
        "{:>9}  {:>10} {:>10} {:>10}  {:>7}  {:>12}",
        "pages", "CSR MB", "Gunrock MB", "CGR MB", "rate", "GCGT BFS ms"
    );

    let device = DeviceConfig::titan_v_scaled(budget);
    for nodes in [10_000usize, 20_000, 40_000, 80_000, 160_000] {
        let raw = web_graph(&WebParams::uk2007_like(nodes), 1);

        // Preprocess once (LLP is the expensive step) and hand the session
        // the finished graph; the competing CSR/Gunrock footprints are
        // computed on the same preprocessed structure.
        let perm = Reordering::Llp(LlpConfig::default()).compute(&raw);
        let graph = raw.permuted(&perm);
        let csr = memory::csr_footprint(&graph);
        let gunrock = memory::gunrock_footprint(&graph);

        // The session owns encoding and the capacity check; `build` returns
        // `Err(SessionError::Oom)` for graphs beyond the budget.
        let session = Session::builder()
            .graph(graph)
            .device(device)
            .engine(EngineKind::Gcgt(Strategy::Full))
            .build();

        let fits = |b: usize| {
            if b <= budget {
                format!("{:.1}", b as f64 / 1e6)
            } else {
                format!("{:.1}!", b as f64 / 1e6)
            }
        };
        let (gcgt_mb, rate, bfs_ms) = match &session {
            Ok(s) => (
                fits(s.footprint()),
                format!("{:.1}x", s.compression_rate()),
                format!("{:.3}", s.run(Bfs::from(0)).stats.est_ms),
            ),
            Err(e) => (format!("({e})"), "-".into(), "OOM".to_string()),
        };
        println!(
            "{:>9}  {:>10} {:>10} {:>10}  {:>7}  {:>12}",
            nodes,
            fits(csr),
            fits(gunrock),
            gcgt_mb,
            rate,
            bfs_ms
        );
    }
    println!("\n('!' marks structures exceeding the budget — the graph sizes");
    println!(" where only the compressed representation still runs on-device)");
}
