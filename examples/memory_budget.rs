//! Memory-budget planning: for a given device capacity, how much graph can
//! each representation hold, and what does the compression cost at traversal
//! time? This walks the exact trade-off the paper's introduction motivates
//! (a 32 GB GV100 costs $9,000 — compression buys capacity instead).
//!
//! ```sh
//! cargo run --release --example memory_budget
//! ```

use gcgt::core::memory;
use gcgt::prelude::*;

fn main() {
    let budget: usize = 24 << 20; // a "24 MB device" at our scales
    println!("device budget: {} MB\n", budget >> 20);
    println!(
        "{:>9}  {:>10} {:>10} {:>10}  {:>7}  {:>12}",
        "pages", "CSR MB", "Gunrock MB", "CGR MB", "rate", "GCGT BFS ms"
    );

    for nodes in [10_000usize, 20_000, 40_000, 80_000, 160_000] {
        let raw = web_graph(&WebParams::uk2007_like(nodes), 1);
        let perm = Reordering::Llp(LlpConfig::default()).compute(&raw);
        let graph = raw.permuted(&perm);
        let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
        let cgr = CgrGraph::encode(&graph, &cfg);

        let csr = memory::csr_footprint(&graph);
        let gunrock = memory::gunrock_footprint(&graph);
        let gcgt = memory::gcgt_footprint(&cgr);

        let device = DeviceConfig::titan_v_scaled(budget);
        let bfs_ms = match GcgtEngine::new(&cgr, device, Strategy::Full) {
            Ok(engine) => format!("{:.3}", bfs(&engine, 0).stats.est_ms),
            Err(_) => "OOM".to_string(),
        };
        let fits = |b: usize| {
            if b <= budget {
                format!("{:.1}", b as f64 / 1e6)
            } else {
                format!("{:.1}!", b as f64 / 1e6)
            }
        };
        println!(
            "{:>9}  {:>10} {:>10} {:>10}  {:>6.1}x  {:>12}",
            nodes,
            fits(csr),
            fits(gunrock),
            fits(gcgt),
            cgr.compression_rate(),
            bfs_ms
        );
    }
    println!("\n('!' marks structures exceeding the budget — the graph sizes");
    println!(" where only the compressed representation still runs on-device)");
}
