//! Quickstart: compress a graph into CGR and run BFS on the simulated GPU.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gcgt::prelude::*;

fn main() {
    // A synthetic web crawl standing in for real data; swap in
    // `edgelist::load("my-graph.txt")` for your own edge list.
    let raw = web_graph(&WebParams::uk2002_like(20_000), 42);
    println!(
        "graph: {} nodes, {} edges (avg degree {:.1})",
        raw.num_nodes(),
        raw.num_edges(),
        raw.avg_degree()
    );

    // Preprocess as the paper does: LLP reordering for locality.
    let perm = Reordering::Llp(LlpConfig::default()).compute(&raw);
    let graph = raw.permuted(&perm);

    // Encode into the Compressed Graph Representation with the paper's
    // Table 2 parameters (ζ3 code, min interval 4, 32-byte segments).
    let config = Strategy::Full.cgr_config(&CgrConfig::paper_default());
    let cgr = CgrGraph::encode(&graph, &config);
    println!(
        "CGR: {:.2} bits/edge → compression rate {:.1}x (CSR would use 32 bits/edge)",
        cgr.bits_per_edge(),
        cgr.compression_rate()
    );
    println!(
        "     {:.0}% of edges live in intervals, {} residual segments",
        100.0 * cgr.stats().interval_coverage(),
        cgr.stats().segments
    );

    // Traverse the compressed graph directly on the simulated GPU.
    let device = DeviceConfig::titan_v_scaled(256 << 20);
    let engine = GcgtEngine::new(&cgr, device, Strategy::Full).expect("graph fits device memory");
    let run = bfs(&engine, 0);
    println!(
        "BFS from node 0: reached {} nodes in {} levels — {:.3} simulated ms \
         ({} kernel launches, {} memory transactions)",
        run.reached,
        run.levels,
        run.stats.est_ms,
        run.stats.launches,
        run.stats.mem.transactions
    );

    // Sanity: identical to the serial oracle.
    assert_eq!(run.depth, refalgo::bfs(&graph, 0).depth);
    println!("depths verified against the serial reference ✓");
}
