//! Quickstart: build a `Session` over a compressed graph and run BFS on the
//! simulated GPU.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gcgt::prelude::*;

fn main() {
    // A synthetic web crawl standing in for real data; swap in
    // `edgelist::load("my-graph.txt")` for your own edge list.
    let graph = web_graph(&WebParams::uk2002_like(20_000), 42);
    println!(
        "graph: {} nodes, {} edges (avg degree {:.1})",
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // One builder owns the paper's whole pipeline: LLP reordering for
    // locality, CGR encoding with the Table 2 parameters (ζ3 code, min
    // interval 4, 32-byte segments), device-capacity checking, and engine
    // selection. Everything is validated before anything runs.
    let session = Session::builder()
        .graph(graph.clone())
        .reorder(Reordering::Llp(LlpConfig::default()))
        .compress(Strategy::Full.cgr_config(&CgrConfig::paper_default()))
        .device(DeviceConfig::titan_v_scaled(256 << 20))
        .engine(EngineKind::Gcgt(Strategy::Full))
        .build()
        .expect("graph fits device memory");

    let cgr = session.cgr().expect("GCGT sessions encode");
    println!(
        "CGR: {:.2} bits/edge → compression rate {:.1}x (CSR would use 32 bits/edge)",
        cgr.bits_per_edge(),
        cgr.compression_rate()
    );
    println!(
        "     {:.0}% of edges live in intervals, {} residual segments",
        100.0 * cgr.stats().interval_coverage(),
        cgr.stats().segments
    );

    // Traverse the compressed graph directly on the simulated GPU. The
    // session reordered internally, but sources and results are in the
    // original node ids.
    let run = session.run(Bfs::from(0));
    println!(
        "BFS from node 0: reached {} nodes in {} levels — {:.3} simulated ms \
         ({} kernel launches, {} memory transactions)",
        run.output.reached,
        run.output.levels,
        run.stats.est_ms,
        run.stats.launches,
        run.stats.mem.transactions
    );

    // Sanity: identical to the serial oracle on the *original* graph.
    assert_eq!(run.output.depth, refalgo::bfs(&graph, 0).depth);
    println!("depths verified against the serial reference ✓");

    // Serving workloads batch queries over one device residency.
    let sources: Vec<Bfs> = (0..16).map(Bfs::from).collect();
    let batch = session.run_batch(&sources);
    println!(
        "batch of {}: {:.3} ms total ({} upload, mean query {:.3} ms)",
        batch.outputs.len(),
        batch.total_ms(),
        batch.uploads,
        batch.mean_query_ms()
    );
}
