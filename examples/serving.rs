//! Concurrent serving: one shared compressed graph, a pool of simulated
//! worker devices, and a mixed BFS + PageRank workload — the "many users,
//! one structure" scenario the ROADMAP grows toward. Shows throughput and
//! tail latency scaling with worker count while every answer (and every
//! per-query statistic) stays bitwise identical to serial execution.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use gcgt::prelude::*;
use std::sync::Arc;

fn main() {
    // One web-crawl analogue, prepared once: reordering, CGR encoding and
    // the capacity check all happen here — then the immutable result is
    // shared by every worker through one Arc.
    let graph = web_graph(&WebParams::uk2002_like(30_000), 7);
    let prepared: Arc<PreparedGraph> = Session::builder()
        .graph(graph)
        .reorder(Reordering::Llp(LlpConfig::default()))
        .engine(EngineKind::Gcgt(Strategy::Full))
        .build()
        .expect("graph fits the default device")
        .prepared();
    println!(
        "prepared: {} nodes, {:.1}x compression, {} KiB resident structure\n",
        prepared.num_nodes(),
        prepared.compression_rate(),
        prepared.structure_bytes() / 1024
    );

    // The workload of one serving window: 30 BFS queries from users plus a
    // few PageRank refreshes.
    let mut queries: Vec<Query> = (0..30).map(|i| Query::Bfs(i * 97 % 1_000)).collect();
    for slot in (0..queries.len()).step_by(10) {
        queries[slot] = Query::Pagerank(Pagerank::default());
    }

    // Serial oracle for the first query: pooled answers must match it
    // bitwise no matter how many workers race.
    let oracle = prepared.run(queries[1]);

    println!(
        "{:>7}  {:>10} {:>11} {:>9} {:>9} {:>9}  {:>8}",
        "workers", "makespan", "throughput", "p50", "p95", "p99", "speedup"
    );
    for workers in [1usize, 2, 4, 8] {
        let pool = ServePool::new(prepared.clone(), workers).expect("positive worker count");
        let report = pool.serve(&queries);
        assert_eq!(
            report.outputs[1],
            Ok(oracle.output.clone()),
            "serving changed an answer!"
        );
        assert_eq!(report.per_query[1], oracle.stats, "serving changed a cost!");
        let s = &report.stats;
        println!(
            "{:>7}  {:>8.2}ms {:>8.0}q/s {:>7.2}ms {:>7.2}ms {:>7.2}ms  {:>7.2}x",
            workers,
            s.makespan_ms,
            s.throughput_qps(),
            s.p50_ms,
            s.p95_ms,
            s.p99_ms,
            s.speedup()
        );
    }

    println!(
        "\n(same queries, same answers, same per-query costs at every worker\n\
         count — only queue wait and completion time change; workers return\n\
         to their post-upload baseline once the queue drains)"
    );
}
