//! Sharded multi-device traversal: one compressed graph placed onto
//! 1/2/4/8 modeled GPUs, the same BFS batch run at every device count, and
//! the bulk-synchronous frontier exchange priced against NVLink- and
//! PCIe-class interconnects. Answers and modeled kernel time are bitwise
//! identical at every device count — only the exchange bill changes.
//!
//! ```sh
//! cargo run --release --example sharding
//! ```

use gcgt::prelude::*;

fn main() {
    // A web-crawl analogue, reordered for locality and CGR-compressed —
    // the same structure every device count shards.
    let graph = web_graph(&WebParams::uk2002_like(30_000), 7);
    let sources: Vec<Bfs> = (0..16).map(|i| Bfs::from(i * 97 % 1_000)).collect();

    // The single-device oracle every sharded run must reproduce bitwise.
    let serial = Session::builder()
        .graph(graph.clone())
        .reorder(Reordering::Llp(LlpConfig::default()))
        .build()
        .expect("graph fits the default device");
    let oracle = serial.run_batch(&sources);
    println!(
        "prepared: {} nodes, {:.1}x compression, {} KiB resident structure\n",
        serial.num_nodes(),
        serial.compression_rate(),
        serial.structure_bytes() / 1024
    );

    for (link_name, link) in [
        ("NVLink", InterconnectConfig::nvlink()),
        ("PCIe p2p", InterconnectConfig::pcie3()),
    ] {
        println!(
            "{link_name}: {:.0} GB/s, {:.0} us/message",
            link.bandwidth_gb_s, link.latency_us
        );
        println!(
            "{:>8} {:>12} {:>11} {:>11} {:>13} {:>8}",
            "devices", "est ms", "exchange ms", "sync steps", "boundary", "exch %"
        );
        for devices in [1usize, 2, 4, 8] {
            let session = Session::builder()
                .graph(graph.clone())
                .reorder(Reordering::Llp(LlpConfig::default()))
                .shards(devices)
                .interconnect(link)
                .build()
                .expect("each shard fits its device");
            let batch = session.run_batch(&sources);

            // The sharding contract: same answers, same kernel-side cost.
            assert_eq!(batch.outputs[0].depth, oracle.outputs[0].depth);
            assert_eq!(
                batch.stats.est_ms.to_bits(),
                oracle.stats.est_ms.to_bits(),
                "sharding must never change modeled kernel time"
            );

            let s = &batch.stats;
            println!(
                "{:>8} {:>10.2}ms {:>9.2}ms {:>11} {:>13} {:>7.1}%",
                devices,
                s.est_ms,
                s.exchange_ms,
                s.sync_steps,
                s.boundary_nodes,
                100.0 * s.exchange_ms / (s.est_ms + s.exchange_ms)
            );
        }
        println!();
    }

    println!(
        "(the per-step union of per-shard expansions is exactly the serial\n\
         schedule, so outputs and kernel statistics are bitwise identical at\n\
         any device count; the owner-computes exchange of boundary frontier\n\
         bitmaps is the only cost sharding adds — and the slower the link,\n\
         the larger its share)"
    );
}
