//! Social-network influence analysis on compressed graphs: single-source
//! betweenness centrality (Figure 15's BC workload) over a skewed follower
//! network, comparing the GCGT strategies on super-node handling — all
//! through the `Session` API, one builder line per engine variant.
//!
//! ```sh
//! cargo run --release --example social_influence
//! ```

use gcgt::prelude::*;

fn main() {
    let graph = social_graph(&SocialParams::twitter_like(15_000), 99);
    println!(
        "follower network: {} users, {} follows, max out-degree {} (avg {:.1})",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree(),
        graph.avg_degree()
    );

    let device = DeviceConfig::titan_v_scaled(256 << 20);
    let source = 3u32;

    // How much does residual segmentation matter on a graph like this?
    // (The paper's Figure 9: everything except segmentation stays
    // super-node-bound on twitter.)
    for strategy in [Strategy::TaskStealing, Strategy::Full] {
        let session = Session::builder()
            .graph(graph.clone())
            .device(device)
            .engine(EngineKind::Gcgt(strategy))
            .build()
            .unwrap();
        let run = session.run(Bfs::from(source));
        println!(
            "  {:<30} BFS {:.3} sim ms ({} launches)",
            strategy.name(),
            run.stats.est_ms,
            run.stats.launches
        );
    }

    // Betweenness centrality from the source: who brokers the information
    // flow out of this account?
    let session = Session::builder()
        .graph(graph.clone())
        .device(device)
        .engine(EngineKind::Gcgt(Strategy::Full))
        .build()
        .unwrap();
    let run = session.run(Bc::from(source));
    println!(
        "BC from user {source}: forward+backward passes in {:.3} sim ms",
        run.stats.est_ms
    );

    let bc = &run.output;
    let mut brokers: Vec<(usize, f64)> = bc.delta.iter().copied().enumerate().collect();
    brokers.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top information brokers (dependency δ):");
    for (user, delta) in brokers.into_iter().take(5) {
        println!(
            "  user {user:>6}  δ = {delta:.1}  (σ = {:.0}, depth {})",
            bc.sigma[user], bc.depth[user]
        );
    }

    // Verify against the serial Brandes oracle.
    let oracle = refalgo::betweenness_from_source(&graph, source);
    assert_eq!(bc.sigma, oracle.sigma, "σ must be exact");
    println!("σ verified against serial Brandes ✓");

    // Serving view: centrality for a whole panel of accounts, batched on
    // one device residency instead of re-uploading per account.
    let panel: Vec<Bc> = (0..8).map(Bc::from).collect();
    let batch = session.run_batch(&panel);
    println!(
        "panel of {} accounts: {:.3} ms batched (mean {:.3} ms per account, {} upload)",
        batch.outputs.len(),
        batch.total_ms(),
        batch.mean_query_ms(),
        batch.uploads
    );
}
