//! Observability end to end: one BFS per engine shape — in-core,
//! out-of-core under a tight memory budget, and a 4-way sharded placement
//! — traced into a single Chrome trace (load `tracing.json` in Perfetto or
//! `chrome://tracing`), with a Prometheus-style metrics snapshot and a
//! per-run latency decomposition printed alongside. Because every
//! timestamp comes from the simulator's modeled clock, re-running this
//! example reproduces the trace byte for byte.
//!
//! ```sh
//! cargo run --release --example tracing
//! ```

use std::sync::Arc;

use gcgt::prelude::*;

fn main() {
    // One recorder + one metrics registry observe every session below,
    // fanned out through a single handle.
    let recorder = Arc::new(TraceRecorder::new());
    let metrics = Arc::new(MetricsRegistry::new());
    let observer = ObserverHandle::new(FanoutObserver::new(vec![
        ObserverHandle::from_arc(recorder.clone()),
        ObserverHandle::from_arc(metrics.clone()),
    ]));

    let graph = web_graph(&WebParams::uk2002_like(2_000), 42);
    let device = DeviceConfig::titan_v_scaled(16 << 20);

    // In-core: the whole compressed graph is resident.
    let incore = Session::builder()
        .graph(graph.clone())
        .reorder(Reordering::Llp(LlpConfig::default()))
        .device(device)
        .engine(EngineKind::Gcgt(Strategy::Full))
        .observer(observer.clone())
        .build()
        .expect("graph fits the device");

    // Out-of-core: a budget the graph does NOT fit, so partitions stream
    // and the trace gains fault/eviction events.
    let ooc = Session::builder()
        .graph(graph.clone())
        .reorder(Reordering::Llp(LlpConfig::default()))
        .device(device)
        .memory_budget(incore.footprint() * 2 / 3)
        .engine(EngineKind::OutOfCore {
            inner: Strategy::Full,
        })
        .observer(observer.clone())
        .build()
        .expect("out-of-core builds past the capacity wall");
    assert!(ooc.is_streaming());

    // Sharded: the same structure across 4 modeled devices, with the
    // per-step frontier exchange showing up as `shard` spans.
    let sharded = Session::builder()
        .graph(graph)
        .reorder(Reordering::Llp(LlpConfig::default()))
        .device(device)
        .shards(4)
        .observer(observer.clone())
        .build()
        .expect("each shard fits its device");

    // One BFS per engine, each on its own trace track so the rows line up
    // side by side in the viewer.
    for (track, label, session) in [
        (0u64, "in-core", &incore),
        (1, "out-of-core", &ooc),
        (2, "4-shard", &sharded),
    ] {
        let mut executor = session.executor();
        executor.set_trace_track(track);
        let run = executor.run(Bfs::from(0));
        println!("== {label}: BFS in {:.3} modeled ms ==", run.total_ms());
        println!("{}", run.explain());
    }

    let trace = recorder.chrome_trace_json();
    std::fs::write("tracing.json", &trace).expect("write tracing.json");
    println!(
        "wrote {} trace events ({} bytes) to tracing.json",
        recorder.len(),
        trace.len()
    );
    println!("\n== metrics snapshot ==\n{}", metrics.snapshot());
}
