//! Web-archive analysis: the paper's motivating scenario — a crawl larger
//! than device memory becomes tractable once stored as CGR.
//!
//! We build a uk-2007-shaped crawl, show that the uncompressed CSR session
//! does *not* fit the (scaled) device while the compressed one does, then
//! run connected components and PageRank over the compressed structure.
//!
//! ```sh
//! cargo run --release --example web_archive
//! ```

use gcgt::core::memory;
use gcgt::prelude::*;

fn main() {
    let raw = web_graph(&WebParams::uk2007_like(40_000), 7);
    let perm = Reordering::Llp(LlpConfig::default()).compute(&raw);
    let graph = raw.permuted(&perm);
    println!(
        "crawl: {} pages, {} links",
        graph.num_nodes(),
        graph.num_edges()
    );

    // A device sized like the paper's 12 GB card relative to its graphs:
    // big enough for the compressed crawl, too small for raw CSR.
    let csr_need = memory::csr_footprint(&graph);
    let capacity = csr_need * 2 / 3;
    let device = DeviceConfig::titan_v_scaled(capacity);
    println!(
        "device memory {:.1} MB — raw CSR needs {:.1} MB: {}",
        capacity as f64 / 1e6,
        csr_need as f64 / 1e6,
        if csr_need > capacity {
            "DOES NOT FIT"
        } else {
            "fits"
        }
    );

    // The CSR session is rejected at build time — no panic mid-run.
    let csr_session = EngineKind::GpuCsr.session(std::sync::Arc::new(graph.clone()), device);
    match &csr_session {
        Err(SessionError::Oom(oom)) => println!("GPUCSR session refused: {oom}"),
        other => panic!("CSR should exceed this device, got {other:?}"),
    }

    // The compressed session fits.
    let session = Session::builder()
        .graph(graph.clone())
        .device(device)
        .engine(EngineKind::Gcgt(Strategy::Full))
        .build()
        .expect("compressed graph must fit");
    println!(
        "CGR needs {:.1} MB ({:.1}x compression) — fits",
        session.footprint() as f64 / 1e6,
        session.compression_rate()
    );

    // Connected components over the undirected view: how fragmented is the
    // archive? The session symmetrizes internally.
    let cc_session = Session::builder()
        .graph(graph.clone())
        .symmetrize(true)
        .device(device)
        .engine(EngineKind::Gcgt(Strategy::Full))
        .build()
        .unwrap();
    let comps = cc_session.run(Cc);
    println!(
        "connected components: {} (largest structure spans the crawl) — {:.3} sim ms",
        comps.output.count, comps.stats.est_ms
    );

    // Section 3.2's second benefit: even when data must move over PCIe,
    // the compressed structure transfers ~rate× faster. The session's
    // upload accounting uses the same model.
    let pcie = PcieConfig::default();
    println!(
        "PCIe upload: CSR {:.2} ms vs CGR {:.2} ms ({:.1}x faster)",
        pcie.transfer_ms(csr_need, 1),
        session.upload_ms(),
        pcie.speedup(csr_need, session.footprint(), 1)
    );

    // PageRank over the compressed crawl: the top authority pages.
    let pr = session.run(Pagerank {
        damping: 0.85,
        max_iters: 30,
        tolerance: 1e-8,
    });
    let mut top: Vec<(usize, f64)> = pr.output.ranks.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "PageRank ({} iterations, {:.3} sim ms) — top pages:",
        pr.output.iterations, pr.stats.est_ms
    );
    for (page, rank) in top.into_iter().take(5) {
        println!("  page {page:>6}  rank {rank:.6}");
    }
}
