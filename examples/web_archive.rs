//! Web-archive analysis: the paper's motivating scenario — a crawl larger
//! than device memory becomes tractable once stored as CGR.
//!
//! We build a uk-2007-shaped crawl, show that the uncompressed CSR does
//! *not* fit the (scaled) device while the CGR does, then run connected
//! components and PageRank over the compressed structure.
//!
//! ```sh
//! cargo run --release --example web_archive
//! ```

use gcgt::core::memory;
use gcgt::prelude::*;

fn main() {
    let raw = web_graph(&WebParams::uk2007_like(40_000), 7);
    let perm = Reordering::Llp(LlpConfig::default()).compute(&raw);
    let graph = raw.permuted(&perm);
    println!(
        "crawl: {} pages, {} links",
        graph.num_nodes(),
        graph.num_edges()
    );

    // A device sized like the paper's 12 GB card relative to its graphs:
    // big enough for the compressed crawl, too small for raw CSR.
    let capacity = memory::csr_footprint(&graph) * 2 / 3;
    let device = DeviceConfig::titan_v_scaled(capacity);

    let csr_need = memory::csr_footprint(&graph);
    println!(
        "device memory {:.1} MB — raw CSR needs {:.1} MB: {}",
        capacity as f64 / 1e6,
        csr_need as f64 / 1e6,
        if csr_need > capacity { "DOES NOT FIT" } else { "fits" }
    );
    assert!(
        GpuCsrEngine::new(&graph, device).is_err(),
        "CSR should exceed this device"
    );

    let config = Strategy::Full.cgr_config(&CgrConfig::paper_default());
    let cgr = CgrGraph::encode(&graph, &config);
    println!(
        "CGR needs {:.1} MB ({:.1}x compression) — fits",
        memory::gcgt_footprint(&cgr) as f64 / 1e6,
        cgr.compression_rate()
    );
    let engine = GcgtEngine::new(&cgr, device, Strategy::Full)
        .expect("compressed graph must fit");

    // Connected components over the undirected view: how fragmented is the
    // archive?
    let sym = graph.symmetrized();
    let cgr_sym = CgrGraph::encode(&sym, &config);
    let engine_sym = GcgtEngine::new(&cgr_sym, device, Strategy::Full).unwrap();
    let comps = cc(&engine_sym);
    println!(
        "connected components: {} (largest structure spans the crawl) — {:.3} sim ms",
        comps.count, comps.stats.est_ms
    );

    // Section 3.2's second benefit: even when data must move over PCIe,
    // the compressed structure transfers ~rate× faster.
    let pcie = PcieConfig::default();
    println!(
        "PCIe upload: CSR {:.2} ms vs CGR {:.2} ms ({:.1}x faster)",
        pcie.transfer_ms(csr_need, 1),
        pcie.transfer_ms(memory::gcgt_footprint(&cgr), 1),
        pcie.speedup(csr_need, memory::gcgt_footprint(&cgr))
    );

    // PageRank over the compressed crawl: the top authority pages.
    let pr = pagerank(&engine, 0.85, 30, 1e-8);
    let mut top: Vec<(usize, f64)> = pr.ranks.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "PageRank ({} iterations, {:.3} sim ms) — top pages:",
        pr.iterations, pr.stats.est_ms
    );
    for (page, rank) in top.into_iter().take(5) {
        println!("  page {page:>6}  rank {rank:.6}");
    }
}
