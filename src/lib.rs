//! # gcgt
//!
//! A full reproduction of **"GPU-based Graph Traversal on Compressed
//! Graphs"** (Sha, Li, Tan — SIGMOD 2019) as a Rust workspace: the CGR
//! compression format, the GCGT traversal kernels (Two-Phase, Task-Stealing,
//! Warp-centric Decoding, Residual Segmentation), a deterministic SIMT
//! simulator standing in for the GPU, CPU and GPU baselines, and an
//! experiment harness regenerating every table and figure of the paper's
//! evaluation.
//!
//! ## Quickstart
//!
//! Everything runs through a [`prelude::Session`]: a typed builder that owns
//! preprocessing (reordering, symmetrization), CGR encoding, device-capacity
//! checking and engine selection; applications then run uniformly via the
//! [`prelude::Algorithm`] trait.
//!
//! ```
//! use gcgt::prelude::*;
//!
//! // 1. A graph (here: a synthetic web crawl; use your own edge list).
//! let graph = web_graph(&WebParams::uk2002_like(2_000), 42);
//!
//! // 2. One builder owns the paper's whole pipeline: LLP reordering for
//! //    locality, CGR encoding (Table 2 parameters), capacity checking,
//! //    and engine selection — all validated before anything runs.
//! let session = Session::builder()
//!     .graph(graph)
//!     .reorder(Reordering::Llp(LlpConfig::default()))
//!     .compress(Strategy::Full.cgr_config(&CgrConfig::paper_default()))
//!     .device(DeviceConfig::titan_v_scaled(64 << 20))
//!     .engine(EngineKind::Gcgt(Strategy::Full))
//!     .build()
//!     .expect("graph fits the device");
//! assert!(session.compression_rate() > 2.0);
//!
//! // 3. Run applications uniformly — results come back in your own node
//! //    ids even though the session reordered internally.
//! let run = session.run(Bfs::from(0));
//! assert_eq!(run.output.depth[0], 0);
//! println!("BFS: {} nodes in {:.3} simulated ms", run.output.reached, run.stats.est_ms);
//!
//! // 4. Serving workloads batch many queries over ONE device residency.
//! let sources: Vec<Bfs> = (0..8).map(Bfs::from).collect();
//! let batch = session.run_batch(&sources);
//! assert_eq!(batch.uploads, 1);
//! assert!(batch.total_ms() < (0..8).map(|s| session.run(Bfs::from(s)).total_ms()).sum());
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]
pub use gcgt_baselines as baselines;
pub use gcgt_bench as bench;
pub use gcgt_bits as bits;
pub use gcgt_cgr as cgr;
pub use gcgt_chaos as chaos;
pub use gcgt_core as core;
pub use gcgt_graph as graph;
pub use gcgt_obs as obs;
pub use gcgt_ooc as ooc;
pub use gcgt_serve as serve;
pub use gcgt_session as session;
pub use gcgt_shard as shard;
pub use gcgt_simt as simt;

/// Deprecated free-function shims from the pre-`Session` API.
///
/// These wire one engine to one app per call, re-verifying residency every
/// time; [`session::Session`] (and [`session::Session::run_batch`] for many
/// queries) replaces them. Kept for one release so downstream code keeps
/// compiling with a warning.
pub mod shim {
    use gcgt_core::{BcRun, BfsRun, CcRun, Expander, LabelPropRun, PagerankRun};
    use gcgt_graph::NodeId;

    /// BFS from `source` on an ad-hoc engine.
    #[deprecated(
        since = "0.2.0",
        note = "build a Session and call session.run(Bfs::from(source))"
    )]
    pub fn bfs<E: Expander + ?Sized>(engine: &E, source: NodeId) -> BfsRun {
        gcgt_core::bfs(engine, source)
    }

    /// Connected components on an ad-hoc engine.
    #[deprecated(
        since = "0.2.0",
        note = "build a Session with .symmetrize(true) and call session.run(Cc)"
    )]
    pub fn cc<E: Expander + ?Sized>(engine: &E) -> CcRun {
        gcgt_core::cc(engine)
    }

    /// Betweenness centrality from `source` on an ad-hoc engine.
    #[deprecated(
        since = "0.2.0",
        note = "build a Session and call session.run(Bc::from(source))"
    )]
    pub fn bc<E: Expander + ?Sized>(engine: &E, source: NodeId) -> BcRun {
        gcgt_core::bc(engine, source)
    }

    /// PageRank on an ad-hoc engine.
    #[deprecated(
        since = "0.2.0",
        note = "build a Session and call session.run(Pagerank::default())"
    )]
    pub fn pagerank<E: Expander + ?Sized>(
        engine: &E,
        damping: f64,
        max_iters: usize,
        tolerance: f64,
    ) -> PagerankRun {
        gcgt_core::pagerank(engine, damping, max_iters, tolerance)
    }

    /// Label propagation on an ad-hoc engine.
    #[deprecated(
        since = "0.2.0",
        note = "build a Session and call session.run(LabelProp::default())"
    )]
    pub fn label_propagation<E: Expander + ?Sized>(engine: &E, max_rounds: usize) -> LabelPropRun {
        gcgt_core::label_propagation(engine, max_rounds)
    }
}

/// The commonly-used types and functions in one import.
pub mod prelude {
    // --- the Session API (the primary interface) ---
    pub use gcgt_core::{
        Algorithm, Bc, BcRun, Bfs, BfsRun, Cc, CcRun, LabelProp, LabelPropRun, Pagerank,
        PagerankRun, Query, QueryOutput,
    };
    pub use gcgt_session::{
        BatchRun, EngineKind, Executor, PreparedGraph, Run, Session, SessionBuilder, SessionError,
    };

    // --- the concurrent serving layer (N workers over one PreparedGraph) ---
    pub use gcgt_serve::{
        QueryError, ServeError, ServePolicy, ServePool, ServeReport, ServeStats, WorkerReport,
    };

    // --- deterministic fault injection (chaos plans, retries, typed failures) ---
    pub use gcgt_chaos::{FaultDomain, FaultPlan, FaultRate, RetryPolicy, TypedFailure};

    // --- observability (deterministic tracing + metrics) ---
    pub use gcgt_obs::{
        FanoutObserver, MetricsRegistry, NullObserver, Observer, ObserverHandle, TraceRecorder,
    };

    // --- the engine layer (for building custom engines / direct control) ---
    pub use gcgt_baselines::{GpuCsrEngine, GunrockEngine, LigraGraph, LigraPlusGraph};
    pub use gcgt_core::{
        DirectionMode, DynExpander, Expander, Frontier, GcgtEngine, Strategy, PULL_ALPHA,
    };
    pub use gcgt_ooc::{OocConfig, OocEngine, PartitionMap};
    pub use gcgt_shard::{ShardEngine, ShardInner, ShardPlan};

    // --- substrate ---
    pub use gcgt_bits::Code;
    pub use gcgt_cgr::{ByteRleGraph, CgrConfig, CgrGraph, CompressionStats, ValidationMode};
    pub use gcgt_graph::edgelist;
    pub use gcgt_graph::gen::{
        brain_like, erdos_renyi, rmat, social_graph, toys, web_graph, BrainParams, RmatParams,
        SocialParams, WebParams,
    };
    pub use gcgt_graph::order::{GorderConfig, LlpConfig, SlashBurnConfig};
    pub use gcgt_graph::{refalgo, Csr, CsrBuilder, NodeId, Reordering, VnodeConfig, VnodeGraph};
    pub use gcgt_simt::{Device, DeviceConfig, InterconnectConfig, PcieConfig, RunStats};

    // --- deprecated free-function shims (pre-Session API); the allow is
    // for the re-export itself — call sites still get the warning ---
    #[allow(deprecated)]
    pub use crate::shim::{bc, bfs, cc, label_propagation, pagerank};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let g = toys::figure1();
        let session = Session::builder()
            .graph(g.clone())
            .engine(EngineKind::Gcgt(Strategy::Full))
            .build()
            .unwrap();
        let run = session.run(Bfs::from(0));
        assert_eq!(run.output.depth, refalgo::bfs(&g, 0).depth);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        let g = toys::figure1();
        let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
        let cgr = CgrGraph::encode(&g, &cfg);
        let engine =
            GcgtEngine::new(&cgr, DeviceConfig::titan_v_scaled(1 << 20), Strategy::Full).unwrap();
        let run = bfs(&engine, 0);
        assert_eq!(run.depth, refalgo::bfs(&g, 0).depth);
    }
}
