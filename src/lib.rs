//! # gcgt
//!
//! A full reproduction of **"GPU-based Graph Traversal on Compressed
//! Graphs"** (Sha, Li, Tan — SIGMOD 2019) as a Rust workspace: the CGR
//! compression format, the GCGT traversal kernels (Two-Phase, Task-Stealing,
//! Warp-centric Decoding, Residual Segmentation), a deterministic SIMT
//! simulator standing in for the GPU, CPU and GPU baselines, and an
//! experiment harness regenerating every table and figure of the paper's
//! evaluation. See `DESIGN.md` for the architecture and `EXPERIMENTS.md`
//! for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use gcgt::prelude::*;
//!
//! // 1. A graph (here: a synthetic web crawl; use your own edge list).
//! let graph = web_graph(&WebParams::uk2002_like(2_000), 42);
//!
//! // 2. Improve locality and compress into CGR (Table 2 parameters).
//! let perm = Reordering::Llp(LlpConfig::default()).compute(&graph);
//! let graph = graph.permuted(&perm);
//! let config = Strategy::Full.cgr_config(&CgrConfig::paper_default());
//! let cgr = CgrGraph::encode(&graph, &config);
//! assert!(cgr.compression_rate() > 2.0);
//!
//! // 3. Traverse the compressed graph on the simulated GPU.
//! let device = DeviceConfig::titan_v_scaled(64 << 20);
//! let engine = GcgtEngine::new(&cgr, device, Strategy::Full).unwrap();
//! let run = bfs(&engine, 0);
//! assert_eq!(run.depth[0], 0);
//! println!("BFS: {} nodes in {:.3} simulated ms", run.reached, run.stats.est_ms);
//! ```

pub use gcgt_baselines as baselines;
pub use gcgt_bench as bench;
pub use gcgt_bits as bits;
pub use gcgt_cgr as cgr;
pub use gcgt_core as core;
pub use gcgt_graph as graph;
pub use gcgt_simt as simt;

/// The commonly-used types and functions in one import.
pub mod prelude {
    pub use gcgt_baselines::{GpuCsrEngine, GunrockEngine, LigraGraph, LigraPlusGraph};
    pub use gcgt_bits::Code;
    pub use gcgt_cgr::{ByteRleGraph, CgrConfig, CgrGraph, CompressionStats};
    pub use gcgt_core::{
        bc, bfs, cc, label_propagation, pagerank, BcRun, BfsRun, CcRun, Expander, GcgtEngine,
        LabelPropRun, PagerankRun, Strategy,
    };
    pub use gcgt_graph::edgelist;
    pub use gcgt_graph::gen::{
        brain_like, erdos_renyi, rmat, social_graph, toys, web_graph, BrainParams, RmatParams,
        SocialParams, WebParams,
    };
    pub use gcgt_graph::order::{GorderConfig, LlpConfig, SlashBurnConfig};
    pub use gcgt_graph::{refalgo, Csr, CsrBuilder, NodeId, Reordering, VnodeConfig, VnodeGraph};
    pub use gcgt_simt::{Device, DeviceConfig, PcieConfig, RunStats};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let g = toys::figure1();
        let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
        let cgr = CgrGraph::encode(&g, &cfg);
        let engine =
            GcgtEngine::new(&cgr, DeviceConfig::titan_v_scaled(1 << 20), Strategy::Full).unwrap();
        let run = bfs(&engine, 0);
        assert_eq!(run.depth, refalgo::bfs(&g, 0).depth);
    }
}
