//! Chaos oracle: deterministic fault injection must never change *what*
//! surviving queries compute.
//!
//! * **Empty-plan neutrality** (property): a session built with
//!   `FaultPlan::empty()` is bitwise indistinguishable from one built with
//!   no plan at all — outputs, `RunStats`, and pooled aggregates — across
//!   in-core, streaming out-of-core, and 4-shard engines, serial and
//!   through 1- and 4-worker pools.
//! * **Surviving-output oracle** (property): under an arbitrary uniform
//!   fault plan with retries enabled, every query that completes returns an
//!   output bitwise equal to the fault-free oracle, at any worker count,
//!   and the chaos counters (`faults_injected`/`retries`/`backoff_ms`) are
//!   the only place injected faults are visible.
//! * **Typed exhaustion**: retries disabled plus a certain fault turn every
//!   affected query into `QueryError::FaultBudgetExhausted` while the pool
//!   survives and its workers drain back to baseline.
//! * **Corruption regression**: a bit-flipped GCGR payload loaded with
//!   deferred validation surfaces as a *sticky* `QueryError::CorruptGraph`
//!   on every query that touches the bad partition — never a pool-killing
//!   panic, and identical on every subsequent serve.

use gcgt::cgr::io;
use gcgt::prelude::{
    web_graph, CgrConfig, CgrGraph, Csr, EngineKind, FaultPlan, FaultRate, LabelProp, Pagerank,
    Query, QueryError, RetryPolicy, ServePool, Session, Strategy, ValidationMode, WebParams,
};
use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;
use std::sync::Arc;

/// An arbitrary small graph as (node count, edge list).
fn arb_graph() -> impl PropStrategy<Value = Csr> {
    (2usize..80).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..240)
            .prop_map(move |edges| Csr::from_edges(n, &edges))
    })
}

fn five_apps(n: u32) -> Vec<Query> {
    vec![
        Query::Bfs(3 % n),
        Query::Cc,
        Query::Bc(5 % n),
        Query::Pagerank(Pagerank::default()),
        Query::LabelProp(LabelProp::default()),
    ]
}

/// The three engine shapes the chaos contract covers. `plan = None` builds
/// the fault-free oracle; the same shape with a plan must stay
/// output-identical wherever a query survives.
fn build(g: &Csr, shape: usize, plan: Option<FaultPlan>) -> Session {
    let mut builder = Session::builder().graph(g.clone());
    match shape {
        0 => builder = builder.engine(EngineKind::Gcgt(Strategy::Full)),
        1 => {
            // A budget that forces streaming: traversal scratch plus a
            // quarter of the compressed structure.
            let incore = Session::builder()
                .graph(g.clone())
                .build()
                .expect("in-core probe build");
            let budget = (incore.footprint() - incore.structure_bytes())
                + (incore.structure_bytes() / 4).max(1);
            builder = builder.memory_budget(budget).engine(EngineKind::OutOfCore {
                inner: Strategy::Full,
            });
        }
        _ => builder = builder.engine(EngineKind::Gcgt(Strategy::Full)).shards(4),
    }
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    builder.build().expect("chaos-oracle shapes always build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The hard invariant of the whole subsystem: an **empty** fault plan
    /// is bitwise invisible — serial runs and pooled serves agree with the
    /// plan-free build on outputs, per-query stats and aggregates.
    #[test]
    fn empty_plan_is_bitwise_neutral(g in arb_graph(), shape in 0usize..3) {
        let queries = five_apps(g.num_nodes() as u32);
        let bare = build(&g, shape, None);
        let empty = build(&g, shape, Some(FaultPlan::empty()));
        for q in &queries {
            let want = bare.run(*q);
            let got = empty.run(*q);
            prop_assert_eq!(&got.output, &want.output);
            prop_assert_eq!(&got.stats, &want.stats);
            prop_assert_eq!(got.stats.faults_injected, 0);
            prop_assert_eq!(got.stats.retries, 0);
            prop_assert_eq!(got.stats.backoff_ms.to_bits(), 0.0f64.to_bits());
        }
        for workers in [1usize, 4] {
            let a = ServePool::new(bare.prepared(), workers)
                .expect("workers >= 1")
                .serve(&queries);
            let b = ServePool::new(empty.prepared(), workers)
                .expect("workers >= 1")
                .serve(&queries);
            prop_assert_eq!(&a.outputs, &b.outputs);
            prop_assert_eq!(&a.per_query, &b.per_query);
            prop_assert_eq!(&a.stats, &b.stats);
        }
    }

    /// Under any uniform fault plan with the default retry budget (which
    /// the burst cap keeps un-exhaustible), every query survives and its
    /// output is bitwise the fault-free oracle's; injected faults surface
    /// only in the chaos counters and the re-charged transfer/exchange
    /// milliseconds.
    #[test]
    fn surviving_outputs_match_fault_free_oracle(
        g in arb_graph(),
        shape in 0usize..3,
        seed in 0u64..1_000_000,
        per_mille in 1u16..250,
    ) {
        let queries = five_apps(g.num_nodes() as u32);
        let oracle = build(&g, shape, None);
        let chaotic = build(&g, shape, Some(FaultPlan::uniform(seed, per_mille)));
        for q in &queries {
            let want = oracle.run(*q);
            let got = chaotic.run(*q);
            // The *answer* is bitwise the oracle's; the stats embedded in
            // the output legitimately carry the chaos counters and the
            // backoff-recharged transfer, so normalize them before the
            // payload comparison.
            let mut answer = got.output.clone();
            *answer.stats_mut() = *want.output.stats();
            prop_assert_eq!(&answer, &want.output);
            // Work is never silently lost or invented: absent any injected
            // fault the whole RunStats is bitwise the oracle's.
            if got.stats.faults_injected == 0 {
                prop_assert_eq!(&got.stats, &want.stats);
            } else {
                prop_assert!(got.stats.retries >= got.stats.faults_injected);
                prop_assert!(
                    got.stats.transfer_ms + got.stats.exchange_ms
                        >= want.stats.transfer_ms + want.stats.exchange_ms
                );
                prop_assert_eq!(got.stats.est_ms.to_bits(), want.stats.est_ms.to_bits());
                prop_assert_eq!(got.stats.launches, want.stats.launches);
            }
        }
        // Verdicts are salted by submission index, not by worker: pooled
        // serves agree with each other and with the serial oracle at any
        // worker count.
        let one = ServePool::new(chaotic.prepared(), 1)
            .expect("workers >= 1")
            .serve(&queries);
        let four = ServePool::new(chaotic.prepared(), 4)
            .expect("workers >= 1")
            .serve(&queries);
        prop_assert_eq!(&one.outputs, &four.outputs);
        prop_assert_eq!(&one.per_query, &four.per_query);
        // Scheduling changes *when* queries run, never what they cost:
        // simulated work — including the fault-recharged transfer — is
        // conserved exactly across worker counts.
        prop_assert_eq!(one.stats.work_ms.to_bits(), four.stats.work_ms.to_bits());
        prop_assert_eq!(
            one.stats.transfer_ms.to_bits(),
            four.stats.transfer_ms.to_bits()
        );
        prop_assert_eq!(one.stats.launches, four.stats.launches);
        for (i, q) in queries.iter().enumerate() {
            let want = oracle.run(*q);
            match &one.outputs[i] {
                Ok(out) => {
                    let mut answer = out.clone();
                    *answer.stats_mut() = *want.output.stats();
                    prop_assert_eq!(&answer, &want.output);
                }
                Err(e) => prop_assert!(false, "uniform plans never exhaust: {e} on {:?}", q),
            }
        }
    }

    /// Per-query execution faults are terminal but *contained*: failed
    /// queries report `QueryError::InjectedFault`, surviving ones are
    /// bitwise the oracle, and the pool's workers drain to baseline.
    #[test]
    fn injected_query_faults_are_contained(
        g in arb_graph(),
        seed in 0u64..1_000_000,
    ) {
        let queries = five_apps(g.num_nodes() as u32);
        let oracle = build(&g, 0, None);
        let plan = FaultPlan {
            query: FaultRate::new(400, 1),
            ..FaultPlan { seed, ..FaultPlan::empty() }
        };
        let chaotic = build(&g, 0, Some(plan));
        let one = ServePool::new(chaotic.prepared(), 1)
            .expect("workers >= 1")
            .serve(&queries);
        let four = ServePool::new(chaotic.prepared(), 4)
            .expect("workers >= 1")
            .serve(&queries);
        // Verdicts are scheduling-independent: both pools agree exactly on
        // who failed.
        prop_assert_eq!(&one.outputs, &four.outputs);
        prop_assert_eq!(one.stats.failed, four.stats.failed);
        for (i, q) in queries.iter().enumerate() {
            match &four.outputs[i] {
                Ok(out) => prop_assert_eq!(out, &oracle.run(*q).output),
                Err(e) => prop_assert_eq!(e, &QueryError::InjectedFault),
            }
        }
        prop_assert_eq!(
            four.stats.completed + four.stats.failed,
            queries.len() as u64
        );
        for w in &four.workers {
            prop_assert_eq!(w.allocated, w.baseline);
        }
    }
}

#[test]
fn exhausted_fault_budget_is_a_typed_error_and_the_pool_survives() {
    let g = web_graph(&WebParams::uk2002_like(400), 7);
    // Every transfer fails and retries are disabled: the first partition
    // fault of every streaming query escalates immediately.
    let plan = FaultPlan {
        transfer: FaultRate::new(1000, u32::MAX),
        retry: RetryPolicy::disabled(),
        ..FaultPlan::empty()
    };
    let chaotic = build(&g, 1, Some(plan));
    assert!(chaotic.is_streaming(), "shape 1 must stream");
    let queries = five_apps(g.num_nodes() as u32);
    let report = ServePool::new(chaotic.prepared(), 2)
        .expect("workers >= 1")
        .serve(&queries);
    for (i, out) in report.outputs.iter().enumerate() {
        assert_eq!(
            *out,
            Err(QueryError::FaultBudgetExhausted {
                domain: "transfer",
                failures: 1,
            }),
            "query {i}"
        );
    }
    assert_eq!(report.stats.completed, 0);
    assert_eq!(report.stats.failed, queries.len() as u64);
    // A failed query's view is dropped wholesale: the workers stay at
    // their post-upload baseline and the pool remains usable.
    for w in &report.workers {
        assert_eq!(w.allocated, w.baseline, "worker {}", w.worker);
    }
    let again = ServePool::new(chaotic.prepared(), 2)
        .expect("workers >= 1")
        .serve(&queries);
    assert_eq!(report.outputs, again.outputs);
}

#[test]
fn corrupt_payload_is_a_sticky_typed_error_never_a_panic() {
    let g = web_graph(&WebParams::uk2002_like(600), 7);
    let cgr = CgrGraph::encode(&g, &CgrConfig::paper_default());
    let mut buf = Vec::new();
    io::write_cgr(&cgr, &mut buf).expect("in-memory v2 write");

    // Find a payload flip that passes the deferred load's structural
    // header checks but fails full validation (same search as the load
    // suite): that is exactly the corruption deferred validation exists to
    // catch at first touch.
    let payload_start = buf.len() - 64;
    let mut corrupt = None;
    'search: for byte in payload_start..buf.len() {
        for bit in 0..8u8 {
            let mut c = buf.clone();
            c[byte] ^= 1 << bit;
            if CgrGraph::from_bytes(&c).is_err() {
                if let Ok(cgr) = io::read_cgr_with(&c[..], ValidationMode::Deferred) {
                    corrupt = Some(cgr);
                    break 'search;
                }
            }
        }
    }
    let corrupt = corrupt.expect("some payload flip is caught by validation only");

    // A streaming session adopts the deferred graph as-is and validates
    // partition by partition at first touch.
    let incore = Session::builder().graph(g.clone()).build().expect("probe");
    let budget =
        (incore.footprint() - incore.structure_bytes()) + (incore.structure_bytes() / 4).max(1);
    let session = Session::builder()
        .graph_compressed(corrupt)
        .memory_budget(budget)
        .engine(EngineKind::OutOfCore {
            inner: Strategy::Full,
        })
        .build()
        .expect("deferred corruption must not fail the streaming build");
    assert!(session.is_streaming());

    let prepared = session.prepared();
    let queries = five_apps(g.num_nodes() as u32);
    let first = ServePool::new(Arc::clone(&prepared), 2)
        .expect("workers >= 1")
        .serve(&queries);
    // PageRank's all-nodes frontier must touch the corrupt partition: the
    // failure is typed, not a pool-killing panic.
    let corrupt_errors: Vec<&QueryError> = first
        .outputs
        .iter()
        .filter_map(|o| o.as_ref().err())
        .collect();
    assert!(
        corrupt_errors
            .iter()
            .all(|e| matches!(e, QueryError::CorruptGraph(_))),
        "every failure must be typed corruption: {corrupt_errors:?}"
    );
    assert!(
        matches!(&first.outputs[3], Err(QueryError::CorruptGraph(msg)) if msg.contains("corrupt CGR payload")),
        "PageRank touches every partition: {:?}",
        first.outputs[3]
    );
    for w in &first.workers {
        assert_eq!(w.allocated, w.baseline, "worker {}", w.worker);
    }
    // Sticky: a second serve over the same prepared graph reports the very
    // same outcomes (same partitions poisoned, same messages), and any
    // query that avoided the bad partition still matches the oracle.
    let second = ServePool::new(prepared, 2)
        .expect("workers >= 1")
        .serve(&queries);
    assert_eq!(first.outputs, second.outputs);
    let oracle = Session::builder()
        .graph(g.clone())
        .memory_budget(budget)
        .engine(EngineKind::OutOfCore {
            inner: Strategy::Full,
        })
        .build()
        .expect("oracle build");
    for (i, q) in queries.iter().enumerate() {
        if let Ok(out) = &first.outputs[i] {
            assert_eq!(out, &oracle.run(*q).output, "{q:?}");
        }
    }
}
