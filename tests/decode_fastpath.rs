//! End-to-end pins for the table-driven VLC decode fast path.
//!
//! Two claims, checked across all 5 applications × every `EngineKind` ×
//! every `DirectionMode` (with a streaming out-of-core budget included):
//!
//! 1. **Answers are decode-path independent.** The decode table changes
//!    *how fast* codewords resolve, never *what* they resolve to — so every
//!    application answer is bitwise identical whether the device models
//!    table decoding or the serial bit-scan, and matches the reference
//!    algorithms.
//! 2. **The modeled saving is observable.** With `DeviceConfig::table_decode`
//!    set, GCGT engines charge decode steps as `OpClass::TableDecode` (one
//!    shared-memory probe, 2 cycles) instead of `ItvDecode`/`ResDecode`
//!    (serial bit-scans, 12/6 cycles): the step *schedule* is unchanged
//!    (same slot counts), `est_ms` strictly drops on decode-heavy runs, and
//!    `RunStats` exposes the new class. CSR baselines decode nothing and
//!    are bitwise unaffected.

use std::sync::Arc;

use gcgt::core::Strategy;
use gcgt::prelude::{
    refalgo, Algorithm, Csr, DeviceConfig, DirectionMode, EngineKind, LabelProp, Pagerank, Query,
    QueryOutput, Session,
};
use gcgt::simt::OpClass;

fn all_queries() -> Vec<Query> {
    vec![
        Query::Bfs(0),
        Query::Cc,
        Query::Bc(1),
        Query::Pagerank(Pagerank::default()),
        Query::LabelProp(LabelProp::default()),
    ]
}

fn all_engines() -> Vec<EngineKind> {
    vec![
        EngineKind::Gcgt(Strategy::Full),
        EngineKind::Gcgt(Strategy::TwoPhase),
        EngineKind::Gcgt(Strategy::Intuitive),
        EngineKind::GpuCsr,
        EngineKind::Gunrock,
        EngineKind::OutOfCore {
            inner: Strategy::Full,
        },
    ]
}

/// The application answer (everything except the embedded cost statistics,
/// which the decode-cost model is *supposed* to change).
fn assert_same_answers(a: &QueryOutput, b: &QueryOutput, what: &str) {
    match (a, b) {
        (QueryOutput::Bfs(x), QueryOutput::Bfs(y)) => {
            assert_eq!(x.depth, y.depth, "{what}: bfs depth");
            assert_eq!(x.reached, y.reached, "{what}: bfs reached");
            assert_eq!(x.levels, y.levels, "{what}: bfs levels");
        }
        (QueryOutput::Cc(x), QueryOutput::Cc(y)) => {
            assert_eq!(x.component, y.component, "{what}: cc components");
            assert_eq!(x.count, y.count, "{what}: cc count");
            assert_eq!(x.iterations, y.iterations, "{what}: cc iterations");
        }
        (QueryOutput::Bc(x), QueryOutput::Bc(y)) => {
            assert_eq!(x.depth, y.depth, "{what}: bc depth");
            assert_eq!(x.sigma, y.sigma, "{what}: bc sigma");
            assert_eq!(x.delta, y.delta, "{what}: bc delta");
        }
        (QueryOutput::Pagerank(x), QueryOutput::Pagerank(y)) => {
            assert_eq!(x.ranks, y.ranks, "{what}: pagerank ranks");
            assert_eq!(x.iterations, y.iterations, "{what}: pagerank iterations");
        }
        (QueryOutput::LabelProp(x), QueryOutput::LabelProp(y)) => {
            assert_eq!(x.labels, y.labels, "{what}: labelprop labels");
            assert_eq!(x.rounds, y.rounds, "{what}: labelprop rounds");
        }
        _ => panic!("{what}: mismatched query output variants"),
    }
}

fn build(
    graph: &Arc<Csr>,
    kind: EngineKind,
    direction: DirectionMode,
    device: DeviceConfig,
) -> Session {
    let mut b = Session::builder()
        .graph_shared(Arc::clone(graph))
        .engine(kind)
        .direction(direction)
        .device(device);
    if matches!(kind, EngineKind::OutOfCore { .. }) {
        let incore = Session::builder()
            .graph_shared(Arc::clone(graph))
            .device(device)
            .build()
            .unwrap();
        let scratch = incore.footprint() - incore.structure_bytes();
        // Tight enough to really stream.
        b = b.memory_budget(scratch + (incore.structure_bytes() / 4).max(1));
    }
    b.build().unwrap()
}

#[test]
fn answers_identical_across_decode_cost_models_and_match_oracles() {
    let graph = Arc::new(
        gcgt::graph::gen::social_graph(&gcgt::graph::gen::SocialParams::twitter_like(400), 9)
            .symmetrized(),
    );
    let want_bfs = refalgo::bfs(&graph, 0);
    let want_cc = refalgo::connected_components(&graph);

    let capacity = 1usize << 30;
    let with_table = DeviceConfig::titan_v_scaled(capacity);
    assert!(
        with_table.table_decode,
        "table decoding is the default model"
    );
    let without_table = DeviceConfig {
        table_decode: false,
        ..with_table
    };

    for kind in all_engines() {
        for direction in [
            DirectionMode::Push,
            DirectionMode::Pull,
            DirectionMode::Adaptive,
        ] {
            let fast = build(&graph, kind, direction, with_table);
            let slow = build(&graph, kind, direction, without_table);
            for query in all_queries() {
                let what = format!("{} {:?} {:?}", kind.name(), direction, query.name());
                let a = fast.run(query);
                let b = slow.run(query);
                assert_same_answers(&a.output, &b.output, &what);
                // And against the reference algorithms where one exists.
                if let QueryOutput::Bfs(run) = &a.output {
                    assert_eq!(run.depth, want_bfs.depth, "{what}: oracle depth");
                }
                if let QueryOutput::Cc(run) = &a.output {
                    assert_eq!(run.component, want_cc.component, "{what}: oracle cc");
                }
            }
        }
    }
}

#[test]
fn table_decode_savings_are_modeled_and_observable() {
    let graph = Arc::new(
        gcgt::graph::gen::web_graph(&gcgt::graph::gen::WebParams::uk2002_like(1_500), 11)
            .symmetrized(),
    );
    let with_table = DeviceConfig::titan_v_scaled(1 << 30);
    let without_table = DeviceConfig {
        table_decode: false,
        ..with_table
    };

    for kind in [
        EngineKind::Gcgt(Strategy::Full),
        EngineKind::Gcgt(Strategy::TwoPhase),
        EngineKind::OutOfCore {
            inner: Strategy::Full,
        },
    ] {
        let fast = build(&graph, kind, DirectionMode::Push, with_table).run(Query::Bfs(0));
        let slow = build(&graph, kind, DirectionMode::Push, without_table).run(Query::Bfs(0));
        let name = kind.name();

        // Same schedule: identical slot totals and Figure 4 step counts —
        // decode slots moved class, they did not disappear.
        let ft = fast.stats.tally;
        let st = slow.stats.tally;
        assert_eq!(
            ft.total_issues(),
            st.total_issues(),
            "{name}: slot counts must not change"
        );
        assert_eq!(
            ft.figure4_steps(),
            st.figure4_steps(),
            "{name}: Figure 4 steps must not change"
        );
        let fast_decodes = ft.issues[OpClass::TableDecode as usize];
        let slow_decodes =
            st.issues[OpClass::ItvDecode as usize] + st.issues[OpClass::ResDecode as usize];
        assert!(fast_decodes > 0, "{name}: no TableDecode slots charged");
        assert_eq!(
            fast_decodes, slow_decodes,
            "{name}: every decode slot must map 1:1 onto a table probe"
        );
        assert_eq!(
            ft.issues[OpClass::ItvDecode as usize] + ft.issues[OpClass::ResDecode as usize],
            0,
            "{name}: serial bit-scan slots remain in table mode"
        );

        // The saving: one shared-memory probe (2 cycles) replaces a serial
        // bit-scan (12/6 cycles), so the modeled time strictly drops.
        assert!(
            fast.stats.est_ms < slow.stats.est_ms,
            "{name}: table decoding modeled no saving ({} vs {} ms)",
            fast.stats.est_ms,
            slow.stats.est_ms
        );
    }

    // CSR baselines decode nothing: the cost model toggle is bitwise
    // invisible to them.
    for kind in [EngineKind::GpuCsr, EngineKind::Gunrock] {
        let fast = build(&graph, kind, DirectionMode::Push, with_table).run(Query::Bfs(0));
        let slow = build(&graph, kind, DirectionMode::Push, without_table).run(Query::Bfs(0));
        assert_eq!(
            fast.stats,
            slow.stats,
            "{}: baseline stats moved",
            kind.name()
        );
        assert_eq!(
            fast.stats.tally.issues[OpClass::TableDecode as usize],
            0,
            "{}: baseline charged table probes",
            kind.name()
        );
    }
}

/// The serving layer shares one `PreparedGraph` — and through it one decode
/// table — across workers, and pooled answers stay bitwise serial ones
/// under the table-decode cost model (the serve suite pins this broadly;
/// here we pin it for a streaming OOC engine specifically, where the table
/// is probed from freshly faulted partitions).
#[test]
fn pooled_streaming_answers_are_bitwise_serial_under_table_decode() {
    let graph = Arc::new(
        gcgt::graph::gen::web_graph(&gcgt::graph::gen::WebParams::uk2002_like(900), 3)
            .symmetrized(),
    );
    let incore = Session::builder()
        .graph_shared(Arc::clone(&graph))
        .build()
        .unwrap();
    let scratch = incore.footprint() - incore.structure_bytes();
    let prepared = Session::builder()
        .graph_shared(Arc::clone(&graph))
        .engine(EngineKind::OutOfCore {
            inner: Strategy::Full,
        })
        .memory_budget(scratch + (incore.structure_bytes() / 4).max(1))
        .build()
        .unwrap()
        .prepared();
    assert!(prepared.is_streaming());
    assert!(prepared.decode_table().is_some());

    let queries = all_queries();
    let report = gcgt::prelude::ServePool::new(Arc::clone(&prepared), 4)
        .unwrap()
        .serve(&queries);
    for (i, query) in queries.iter().enumerate() {
        let oracle = prepared.run(*query);
        assert_eq!(report.outputs[i], Ok(oracle.output), "query {i}");
        assert_eq!(report.per_query[i], oracle.stats, "query {i} stats");
        assert!(
            oracle.stats.tally.issues[OpClass::TableDecode as usize] > 0,
            "query {i} never probed the table"
        );
    }
}
