//! Reproduces the paper's **Figure 4** instruction-flow tables exactly:
//! on the 8-thread example warp, the intuitive schedule takes 26 steps,
//! Two-Phase Traversal takes 12 and Task Stealing takes 10 (counting the
//! decode/handle cells the figure draws).

use gcgt::cgr::{CgrConfig, CgrGraph};
use gcgt::core::kernels::{expand_warp, CollectSink};
use gcgt::core::Strategy;
use gcgt::graph::gen::toys;
use gcgt::simt::WarpSim;

fn steps_for(strategy: Strategy) -> (u64, usize) {
    let (graph, frontier) = toys::figure4();
    let cfg = strategy.cgr_config(&CgrConfig::paper_default());
    let cgr = CgrGraph::encode(&graph, &cfg);
    let mut warp = WarpSim::new(8, 64);
    let mut sink = CollectSink::default();
    expand_warp(strategy, &mut warp, &cgr, &frontier, &mut sink);
    (warp.tally().figure4_steps(), sink.pairs.len())
}

#[test]
fn figure4b_intuitive_takes_26_steps() {
    let (steps, neighbours) = steps_for(Strategy::Intuitive);
    assert_eq!(steps, 26, "Figure 4(b)");
    assert_eq!(neighbours, 37);
}

#[test]
fn figure4c_two_phase_takes_12_steps() {
    let (steps, neighbours) = steps_for(Strategy::TwoPhase);
    assert_eq!(steps, 12, "Figure 4(c)");
    assert_eq!(neighbours, 37);
}

#[test]
fn figure4d_task_stealing_takes_10_steps() {
    let (steps, neighbours) = steps_for(Strategy::TaskStealing);
    assert_eq!(steps, 10, "Figure 4(d)");
    assert_eq!(neighbours, 37);
}

#[test]
fn the_example_expands_identically_under_all_strategies() {
    let (graph, frontier) = toys::figure4();
    let mut reference: Vec<(u32, u32)> = graph.edges().collect();
    reference.sort_unstable();
    for strategy in Strategy::LADDER {
        let cfg = strategy.cgr_config(&CgrConfig::paper_default());
        let cgr = CgrGraph::encode(&graph, &cfg);
        let mut warp = WarpSim::new(8, 64);
        let mut sink = CollectSink::default();
        expand_warp(strategy, &mut warp, &cgr, &frontier, &mut sink);
        let mut got = sink.pairs;
        got.sort_unstable();
        assert_eq!(got, reference, "{strategy:?}");
    }
}
