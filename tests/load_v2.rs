//! GCGR v2 end-to-end: zero-copy loading must be indistinguishable from a
//! fresh encode everywhere a graph can run.
//!
//! * Property tests: arbitrary graphs × arbitrary CGR configurations
//!   round-trip through the v2 buffer both **owned** (`read_cgr`) and
//!   **zero-copy** (`CgrGraph::from_bytes`), with the Elias–Fano offset
//!   index decoding bit-for-bit the same dense array the encoder produced
//!   — and the legacy v1 layout keeps round-tripping too.
//! * All five applications produce bitwise-identical `QueryOutput`s *and*
//!   `RunStats` whether the session encoded the graph itself or adopted a
//!   saved v2 buffer — in-core, streaming out-of-core, sharded across 4
//!   modeled devices, and through a `ServePool` whose workers share the
//!   one zero-copy allocation.
//! * The `graph_compressed` builder path rejects conflicting options with
//!   typed errors, and a deferred-validation load of a corrupt buffer
//!   fails at session build with `SessionError::CorruptGraph`.

use gcgt::cgr::io;
use gcgt::prelude::{
    web_graph, CgrConfig, CgrGraph, Code, Csr, EngineKind, LabelProp, Pagerank, Query, Reordering,
    ServePool, Session, SessionError, Strategy, ValidationMode, WebParams,
};
use proptest::prelude::{prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

/// An arbitrary small graph as (node count, edge list).
fn arb_graph() -> impl PropStrategy<Value = Csr> {
    (2usize..100).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..300)
            .prop_map(move |edges| Csr::from_edges(n, &edges))
    })
}

/// An arbitrary CGR configuration over the supported parameter space.
fn arb_config() -> impl PropStrategy<Value = CgrConfig> {
    (
        prop_oneof![
            Just(Code::Gamma),
            Just(Code::Delta),
            (1u8..6).prop_map(Code::Zeta),
        ],
        prop_oneof![Just(None), (1u32..12).prop_map(Some)],
        prop_oneof![
            Just(None),
            Just(Some(16u32)),
            Just(Some(32)),
            Just(Some(64))
        ],
    )
        .prop_map(|(code, min_interval_len, segment_len_bytes)| CgrConfig {
            code,
            min_interval_len,
            segment_len_bytes,
            ..CgrConfig::paper_default()
        })
}

/// Serializes `cgr` into an in-memory v2 buffer.
fn v2_buffer(cgr: &CgrGraph) -> Vec<u8> {
    let mut buf = Vec::new();
    io::write_cgr(cgr, &mut buf).expect("in-memory v2 write");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn v2_round_trips_owned_and_zero_copy(graph in arb_graph(), config in arb_config()) {
        let cgr = CgrGraph::encode(&graph, &config);
        let buf = v2_buffer(&cgr);

        // Owned load (file-style reader) and zero-copy adoption must both
        // reproduce the encoder's output exactly: same config, same
        // payload bits, and an Elias–Fano index that decodes the same
        // dense offset array the encoder built from.
        // (A v2 `read_cgr` adopts the words it read into shared storage
        // too — the owned-vs-shared split is a v1-reader distinction.)
        let owned = io::read_cgr(&buf[..]).expect("owned v2 read");
        let zero = CgrGraph::from_bytes(&buf).expect("zero-copy v2 load");
        prop_assert!(zero.bits().is_shared(), "from_bytes must borrow, not copy");
        for loaded in [&owned, &zero] {
            prop_assert_eq!(loaded.config(), cgr.config());
            prop_assert_eq!(loaded.bits(), cgr.bits());
            prop_assert_eq!(loaded.offsets_dense(), cgr.offsets_dense());
            prop_assert_eq!(loaded.stats(), cgr.stats());
            prop_assert_eq!(gcgt::cgr::decode::decode_all(loaded), graph.clone());
        }

        // A deferred load converges to the same proven graph.
        let deferred = io::read_cgr_with(&buf[..], ValidationMode::Deferred)
            .expect("deferred v2 read");
        prop_assert!(deferred.validation_pending());
        deferred.ensure_validated_all().expect("clean buffer validates");
        prop_assert!(!deferred.validation_pending());
    }

    #[test]
    fn v1_layout_still_round_trips(graph in arb_graph(), config in arb_config()) {
        let cgr = CgrGraph::encode(&graph, &config);
        let mut buf = Vec::new();
        io::write_cgr_v1(&cgr, &mut buf).expect("in-memory v1 write");
        let loaded = io::read_cgr(&buf[..]).expect("v1 read");
        prop_assert_eq!(loaded.bits(), cgr.bits());
        prop_assert_eq!(loaded.offsets_dense(), cgr.offsets_dense());
        prop_assert_eq!(gcgt::cgr::decode::decode_all(&loaded), graph);
    }
}

/// The traversal workload: a symmetrized generated web graph (Cc needs
/// symmetric adjacency) and the paper-default Full-strategy encoding.
fn workload() -> (Csr, CgrConfig) {
    let g = web_graph(&WebParams::uk2002_like(900), 77).symmetrized();
    (g, Strategy::Full.cgr_config(&CgrConfig::paper_default()))
}

/// One query per application.
fn five_apps(n: u32) -> Vec<Query> {
    vec![
        Query::Bfs(3 % n),
        Query::Cc,
        Query::Bc(5 % n),
        Query::Pagerank(Pagerank::default()),
        Query::LabelProp(LabelProp::default()),
    ]
}

#[test]
fn five_apps_bitwise_equal_in_core() {
    let (g, cfg) = workload();
    let buf = v2_buffer(&CgrGraph::encode(&g, &cfg));

    let baseline = Session::builder()
        .graph(g.clone())
        .compress(cfg)
        .engine(EngineKind::Gcgt(Strategy::Full))
        .build()
        .unwrap();
    let owned = Session::builder()
        .graph_compressed(io::read_cgr(&buf[..]).unwrap())
        .engine(EngineKind::Gcgt(Strategy::Full))
        .build()
        .unwrap();
    let zero = Session::builder()
        .graph_compressed(CgrGraph::from_bytes(&buf).unwrap())
        .engine(EngineKind::Gcgt(Strategy::Full))
        .build()
        .unwrap();

    for q in five_apps(g.num_nodes() as u32) {
        let want = baseline.run(q);
        for loaded in [&owned, &zero] {
            let got = loaded.run(q);
            assert_eq!(got.output, want.output, "{q:?}");
            assert_eq!(got.stats, want.stats, "{q:?}");
        }
    }
}

#[test]
fn five_apps_bitwise_equal_streaming_ooc() {
    let (g, cfg) = workload();
    let buf = v2_buffer(&CgrGraph::encode(&g, &cfg));

    // A budget that forces streaming: traversal scratch plus a quarter of
    // the compressed structure.
    let incore = Session::builder().graph(g.clone()).build().unwrap();
    let budget =
        (incore.footprint() - incore.structure_bytes()) + (incore.structure_bytes() / 4).max(1);

    let baseline = Session::builder()
        .graph(g.clone())
        .compress(cfg)
        .memory_budget(budget)
        .engine(EngineKind::OutOfCore {
            inner: Strategy::Full,
        })
        .build()
        .unwrap();
    assert!(baseline.is_streaming(), "budget must force streaming");
    // The deferred load is the one the OOC engine validates lazily,
    // partition by partition, inside `prepare_frontier`.
    let deferred = Session::builder()
        .graph_compressed(io::read_cgr_with(&buf[..], ValidationMode::Deferred).unwrap())
        .memory_budget(budget)
        .engine(EngineKind::OutOfCore {
            inner: Strategy::Full,
        })
        .build()
        .unwrap();
    assert!(deferred.is_streaming());

    for q in five_apps(g.num_nodes() as u32) {
        let want = baseline.run(q);
        let got = deferred.run(q);
        assert_eq!(got.output, want.output, "{q:?}");
        assert_eq!(got.stats, want.stats, "{q:?}");
    }
}

#[test]
fn five_apps_bitwise_equal_across_four_shards() {
    let (g, cfg) = workload();
    let buf = v2_buffer(&CgrGraph::encode(&g, &cfg));

    let baseline = Session::builder()
        .graph(g.clone())
        .compress(cfg)
        .engine(EngineKind::Gcgt(Strategy::Full))
        .shards(4)
        .build()
        .unwrap();
    let zero = Session::builder()
        .graph_compressed(CgrGraph::from_bytes(&buf).unwrap())
        .engine(EngineKind::Gcgt(Strategy::Full))
        .shards(4)
        .build()
        .unwrap();

    for q in five_apps(g.num_nodes() as u32) {
        let want = baseline.run(q);
        let got = zero.run(q);
        assert_eq!(got.output, want.output, "{q:?}");
        assert_eq!(got.stats, want.stats, "{q:?}");
    }
}

#[test]
fn serve_pool_workers_share_one_zero_copy_buffer() {
    let (g, cfg) = workload();
    let buf = v2_buffer(&CgrGraph::encode(&g, &cfg));

    let baseline = Session::builder()
        .graph(g.clone())
        .compress(cfg)
        .engine(EngineKind::Gcgt(Strategy::Full))
        .build()
        .unwrap();
    let prepared = Session::builder()
        .graph_compressed(CgrGraph::from_bytes(&buf).unwrap())
        .engine(EngineKind::Gcgt(Strategy::Full))
        .build()
        .unwrap()
        .prepared();
    assert!(
        prepared
            .cgr()
            .expect("GCGT sessions encode")
            .bits()
            .is_shared(),
        "the pool's shared PreparedGraph must keep the zero-copy storage"
    );

    let queries = five_apps(g.num_nodes() as u32);
    let report = ServePool::new(prepared, 3).unwrap().serve(&queries);
    for (i, q) in queries.iter().enumerate() {
        let want = baseline.run(*q);
        assert_eq!(report.outputs[i], Ok(want.output), "{q:?}");
        assert_eq!(report.per_query[i], want.stats, "{q:?}");
    }
}

#[test]
fn graph_compressed_conflicts_are_typed_errors() {
    let (g, cfg) = workload();
    let cgr = CgrGraph::encode(&g, &cfg);

    type Tweak = fn(gcgt::session::SessionBuilder) -> gcgt::session::SessionBuilder;
    let build = |f: Tweak, cgr: CgrGraph| f(Session::builder().graph_compressed(cgr)).build().err();
    let conflicts: [(Tweak, &str); 4] = [
        (
            |b| b.graph(web_graph(&WebParams::uk2002_like(64), 1)),
            "graph(..)",
        ),
        (|b| b.compress(CgrConfig::paper_default()), "compress(..)"),
        (|b| b.symmetrize(true), "symmetrize(true)"),
        (|b| b.reorder(Reordering::DegSort), "reorder(..)"),
    ];
    for (f, what) in conflicts {
        match build(f, cgr.clone()) {
            Some(SessionError::CompressedInputConflict { what: got }) => {
                assert_eq!(got, what);
            }
            other => panic!("expected CompressedInputConflict({what}), got {other:?}"),
        }
    }

    // Uncompressed engines cannot adopt a compressed input.
    let err = Session::builder()
        .graph_compressed(cgr.clone())
        .engine(EngineKind::GpuCsr)
        .build()
        .err();
    assert!(
        matches!(err, Some(SessionError::CompressUnsupported { .. })),
        "{err:?}"
    );

    // The baked-in layout faces the same strategy check as compress(..):
    // Full requires residual segmentation, an unsegmented encode is a
    // mismatch.
    let unsegmented = CgrGraph::encode(
        &g,
        &CgrConfig {
            segment_len_bytes: None,
            ..CgrConfig::paper_default()
        },
    );
    let err = Session::builder()
        .graph_compressed(unsegmented)
        .engine(EngineKind::Gcgt(Strategy::Full))
        .build()
        .err();
    assert!(
        matches!(err, Some(SessionError::LayoutMismatch { .. })),
        "{err:?}"
    );
}

#[test]
fn deferred_corruption_surfaces_as_corrupt_graph_at_build() {
    let (g, cfg) = workload();
    let buf = v2_buffer(&CgrGraph::encode(&g, &cfg));

    // Find a payload flip that passes the deferred load's structural
    // header checks but fails full validation — the same search the io
    // unit tests use, over the real workload buffer.
    let payload_start = buf.len() - 64; // deep inside the payload section
    let mut corrupt = None;
    'search: for byte in payload_start..buf.len() {
        for bit in 0..8u8 {
            let mut c = buf.clone();
            c[byte] ^= 1 << bit;
            if CgrGraph::from_bytes(&c).is_err() {
                if let Ok(cgr) = io::read_cgr_with(&c[..], ValidationMode::Deferred) {
                    corrupt = Some(cgr);
                    break 'search;
                }
            }
        }
    }
    let cgr = corrupt.expect("some payload flip is caught by validation only");

    // The session decodes a full CSR mirror, so the deferred graph is
    // proven at build — and the corruption becomes a typed error instead
    // of a traversal-time panic.
    let err = Session::builder().graph_compressed(cgr).build().err();
    assert!(
        matches!(err, Some(SessionError::CorruptGraph(_))),
        "{err:?}"
    );
}
