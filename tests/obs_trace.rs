//! Observability invariants: the exported trace is a golden artifact
//! (byte-identical across runs and serve worker counts), observation never
//! perturbs what it observes, `RunStats::since` deltas compose across
//! batched queries, and the serving pool's queue-wait/service
//! decomposition reassembles latency bitwise.

use gcgt::bench::trace::smoke;
use gcgt::prelude::*;
use gcgt::serve::ServeStats;
use gcgt::simt::{MemStats, Tally};
use proptest::prelude::{prop_assert, proptest, Strategy as PropStrategy};

/// The smoke trace must match the committed fixture byte for byte. If an
/// intentional cost-model or workload change moves it, regenerate with
/// `cargo run -p gcgt-bench --bin repro -- trace` and commit the new
/// `trace.json` as `tests/golden/trace_smoke.json`.
#[test]
fn smoke_trace_matches_golden_fixture() {
    let report = smoke(2);
    let golden = include_str!("golden/trace_smoke.json");
    assert_eq!(
        report.trace_json, golden,
        "smoke trace drifted from tests/golden/trace_smoke.json"
    );
}

/// Execution events carry the query's submission index as track and
/// timestamps from the modeled clock, so everything except the serve spans
/// is byte-identical whatever the pool's worker count.
#[test]
fn execution_trace_is_identical_across_worker_counts() {
    let two = smoke(2);
    let four = smoke(4);
    assert_eq!(two.execution_json, four.execution_json);
    // The per-engine decompositions and serve percentiles are part of the
    // deterministic contract too (the pool summary differs only because
    // queue waits legitimately shrink with more workers).
    assert_eq!(two.explains[..3], four.explains[..3]);
}

/// Observation must be free when enabled and absent when not: the same
/// session with and without an observer produces bitwise-identical outputs
/// and `RunStats` for every engine shape.
#[test]
fn observer_never_perturbs_results() {
    let graph = web_graph(&WebParams::uk2002_like(400), 11);
    let device = DeviceConfig::titan_v_scaled(8 << 20);
    let build = |observed: bool, kind: EngineKind, budget: Option<usize>| {
        let mut b = Session::builder()
            .graph(graph.clone())
            .reorder(Reordering::Llp(LlpConfig::default()))
            .device(device)
            .engine(kind);
        if let Some(bytes) = budget {
            b = b.memory_budget(bytes);
        }
        if observed {
            b = b.observer(ObserverHandle::new(FanoutObserver::new(vec![
                ObserverHandle::new(TraceRecorder::new()),
                ObserverHandle::new(MetricsRegistry::new()),
            ])));
        }
        b.build().expect("session builds")
    };
    let incore = Session::builder()
        .graph(graph.clone())
        .reorder(Reordering::Llp(LlpConfig::default()))
        .device(device)
        .build()
        .unwrap();
    let tight = incore.footprint() * 2 / 3;
    let shapes: Vec<(EngineKind, Option<usize>)> = vec![
        (EngineKind::Gcgt(Strategy::Full), None),
        (
            EngineKind::OutOfCore {
                inner: Strategy::Full,
            },
            Some(tight),
        ),
        (EngineKind::Gcgt(Strategy::Full).sharded(4), None),
    ];
    for (kind, budget) in shapes {
        let plain = build(false, kind, budget);
        let observed = build(true, kind, budget);
        let a = plain.run(Bfs::from(0));
        let b = observed.run(Bfs::from(0));
        assert_eq!(a.output.depth, b.output.depth, "{}", kind.name());
        assert_eq!(a.stats, b.stats, "{}", kind.name());
        assert_eq!(
            a.stats.est_ms.to_bits(),
            b.stats.est_ms.to_bits(),
            "{}",
            kind.name()
        );
        let sources: Vec<Bfs> = (0..4u32).map(Bfs::from).collect();
        let ba = plain.run_batch(&sources);
        let bb = observed.run_batch(&sources);
        assert_eq!(ba.stats, bb.stats, "{}", kind.name());
        assert_eq!(ba.per_query, bb.per_query, "{}", kind.name());
        assert_eq!(
            ba.total_ms().to_bits(),
            bb.total_ms().to_bits(),
            "{}",
            kind.name()
        );
    }
}

/// `RunStats::since` is how batches attribute work to queries; the deltas
/// must compose — per-query exchange/transfer/step counters sum back to
/// the batch totals, exactly for integers and to rounding for floats.
#[test]
fn since_deltas_compose_across_batched_queries() {
    let graph = web_graph(&WebParams::uk2002_like(500), 13);
    let session = Session::builder()
        .graph(graph)
        .reorder(Reordering::Llp(LlpConfig::default()))
        .shards(4)
        .build()
        .expect("sharded session builds");
    let sources: Vec<Bfs> = (0..6u32).map(|i| Bfs::from(i * 37 % 400)).collect();
    let batch = session.run_batch(&sources);
    assert_eq!(batch.per_query.len(), sources.len());

    let sum_u64 = |f: &dyn Fn(&RunStats) -> u64| batch.per_query.iter().map(f).sum::<u64>();
    assert_eq!(sum_u64(&|s| s.launches), batch.stats.launches);
    assert_eq!(sum_u64(&|s| s.sync_steps), batch.stats.sync_steps);
    assert_eq!(sum_u64(&|s| s.boundary_nodes), batch.stats.boundary_nodes);
    assert_eq!(sum_u64(&|s| s.push_steps), batch.stats.push_steps);
    assert_eq!(sum_u64(&|s| s.pushed_edges), batch.stats.pushed_edges);
    assert!(batch.stats.sync_steps > 0, "shard batch must sync");
    assert!(batch.stats.exchange_ms > 0.0, "shard batch must exchange");

    let sum_f64 = |f: &dyn Fn(&RunStats) -> f64| batch.per_query.iter().map(f).sum::<f64>();
    assert!((sum_f64(&|s| s.est_ms) - batch.stats.est_ms).abs() < 1e-9);
    assert!((sum_f64(&|s| s.exchange_ms) - batch.stats.exchange_ms).abs() < 1e-9);
    assert!((sum_f64(&|s| s.transfer_ms) - batch.stats.transfer_ms).abs() < 1e-9);
}

/// A synthetic per-query `RunStats` carrying only the cost fields the FIFO
/// timeline prices (`est + transfer + exchange`).
fn rs(est: f64, transfer: f64, exchange: f64) -> RunStats {
    RunStats {
        est_ms: est,
        cycles: 0.0,
        launches: 1,
        tally: Tally::default(),
        mem: MemStats::default(),
        allocated_bytes: 0,
        partition_faults: 0,
        partition_evictions: 0,
        transfer_ms: transfer,
        push_steps: 0,
        pull_steps: 0,
        pushed_edges: 0,
        pulled_edges: 0,
        exchange_ms: exchange,
        boundary_nodes: 0,
        sync_steps: 0,
        faults_injected: 0,
        retries: 0,
        backoff_ms: 0.0,
    }
}

proptest! {
    /// For every cost vector and worker count: each query's queue wait plus
    /// service time reassembles its latency *bitwise* (the timeline defines
    /// latency as `start + cost`), total busy time is conserved across
    /// worker counts (scheduling moves work, never creates it), and
    /// utilization stays a proper fraction.
    #[test]
    fn queue_wait_plus_service_reassembles_latency(
        costs in proptest::collection::vec(
            // Milli-unit integers mapped to irregular floats (the vendored
            // proptest has no f64 range strategy); division by 1000 makes
            // most costs non-representable, exercising real rounding.
            (0u32..8000, 0u32..2000, 0u32..1000).prop_map(
                |(e, t, x)| (e as f64 / 1000.0, t as f64 / 1000.0, x as f64 / 1000.0)),
            1..40),
        workers in 1usize..6,
    ) {
        let per_query: Vec<RunStats> =
            costs.iter().map(|&(e, t, x)| rs(e, t, x)).collect();
        let stats = ServeStats::compute(&per_query, workers, 0.0);
        for i in 0..per_query.len() {
            let reassembled = stats.queue_wait_ms[i] + stats.service_ms[i];
            prop_assert!(
                reassembled.to_bits() == stats.latency_ms[i].to_bits(),
                "query {i}: wait {} + service {} != latency {}",
                stats.queue_wait_ms[i], stats.service_ms[i], stats.latency_ms[i],
            );
        }
        let busy: f64 = stats.worker_busy_ms.iter().sum();
        let service: f64 = stats.service_ms.iter().sum();
        prop_assert!(
            (busy - service).abs() < 1e-9,
            "busy {busy} != total service {service}",
        );
        let serial = ServeStats::compute(&per_query, 1, 0.0);
        let serial_busy: f64 = serial.worker_busy_ms.iter().sum();
        prop_assert!(
            (busy - serial_busy).abs() < 1e-9,
            "busy time not conserved across worker counts",
        );
        let u = stats.utilization();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&u), "utilization {u}");
    }
}
