//! Out-of-core oracle equivalence: every application produces **identical**
//! output when the graph streams through a tiny memory budget (constant
//! eviction churn) as when it is fully device-resident. Streaming changes
//! residency and transfer cost — never results.

use gcgt::prelude::*;

fn graph() -> Csr {
    // Symmetrized so connected components are meaningful; big enough that a
    // tiny budget forces many partitions and evictions.
    web_graph(&WebParams::uk2002_like(1_200), 23).symmetrized()
}

/// An in-core session and a streaming session over the same graph; the
/// streaming one gets a budget of per-query scratch plus an eighth of the
/// compressed structure, so most of the graph is non-resident at any time.
fn session_pair() -> (Session, Session) {
    let g = graph();
    let incore = Session::builder()
        .graph(g.clone())
        .engine(EngineKind::Gcgt(Strategy::Full))
        .build()
        .unwrap();
    let scratch = incore.footprint() - incore.structure_bytes();
    let budget = scratch + (incore.structure_bytes() / 8).max(1);
    let ooc = Session::builder()
        .graph(g)
        .memory_budget(budget)
        .engine(EngineKind::OutOfCore {
            inner: Strategy::Full,
        })
        .build()
        .expect("tiny budgets still build out-of-core");
    assert!(ooc.is_streaming());
    assert!(
        ooc.num_partitions().unwrap() >= 8,
        "eighth-of-structure budget should force many partitions"
    );
    (incore, ooc)
}

#[test]
fn bfs_identical_under_eviction_churn() {
    let (incore, ooc) = session_pair();
    for source in [0, 7, 311] {
        let a = incore.run(Bfs::from(source));
        let b = ooc.run(Bfs::from(source));
        assert_eq!(a.output.depth, b.output.depth, "source {source}");
        assert_eq!(a.output.reached, b.output.reached);
        assert!(b.stats.partition_evictions >= 1, "budget too generous");
    }
}

#[test]
fn cc_identical_under_eviction_churn() {
    let (incore, ooc) = session_pair();
    let a = incore.run(Cc);
    let b = ooc.run(Cc);
    assert_eq!(a.output.component, b.output.component);
    assert_eq!(a.output.count, b.output.count);
    assert!(b.stats.partition_evictions >= 1);
}

#[test]
fn bc_identical_under_eviction_churn() {
    let (incore, ooc) = session_pair();
    let a = incore.run(Bc::from(2));
    let b = ooc.run(Bc::from(2));
    assert_eq!(a.output.depth, b.output.depth);
    assert_eq!(a.output.sigma, b.output.sigma);
    assert_eq!(a.output.delta, b.output.delta);
    assert!(b.stats.partition_evictions >= 1);
}

#[test]
fn pagerank_identical_under_eviction_churn() {
    let (incore, ooc) = session_pair();
    let a = incore.run(Pagerank::default());
    let b = ooc.run(Pagerank::default());
    // Bitwise equality: streaming must not perturb the float pipeline.
    assert_eq!(a.output.ranks, b.output.ranks);
    assert_eq!(a.output.iterations, b.output.iterations);
    assert!(b.stats.partition_evictions >= 1);
}

#[test]
fn labelprop_identical_under_eviction_churn() {
    let (incore, ooc) = session_pair();
    let a = incore.run(LabelProp::default());
    let b = ooc.run(LabelProp::default());
    assert_eq!(a.output.labels, b.output.labels);
    assert_eq!(a.output.communities, b.output.communities);
    assert!(b.stats.partition_evictions >= 1);
}

#[test]
fn heterogeneous_batch_identical_and_shares_the_cache() {
    let (incore, ooc) = session_pair();
    let queries = [
        Query::Bfs(0),
        Query::Cc,
        Query::Bc(5),
        Query::Pagerank(Pagerank::default()),
        Query::LabelProp(LabelProp::default()),
        Query::Bfs(42),
    ];
    let a = incore.run_batch(&queries);
    let b = ooc.run_batch(&queries);
    for (i, (x, y)) in a.outputs.iter().zip(&b.outputs).enumerate() {
        match (x, y) {
            (QueryOutput::Bfs(p), QueryOutput::Bfs(q)) => assert_eq!(p.depth, q.depth, "query {i}"),
            (QueryOutput::Cc(p), QueryOutput::Cc(q)) => {
                assert_eq!(p.component, q.component, "query {i}")
            }
            (QueryOutput::Bc(p), QueryOutput::Bc(q)) => assert_eq!(p.sigma, q.sigma, "query {i}"),
            (QueryOutput::Pagerank(p), QueryOutput::Pagerank(q)) => {
                assert_eq!(p.ranks, q.ranks, "query {i}")
            }
            (QueryOutput::LabelProp(p), QueryOutput::LabelProp(q)) => {
                assert_eq!(p.labels, q.labels, "query {i}")
            }
            _ => panic!("query {i}: mismatched output variants"),
        }
    }
    // The batch shares one partition cache: later queries hit partitions
    // the earlier ones faulted, so faults grow sublinearly vs standalone.
    let standalone: u64 = queries
        .iter()
        .map(|&q| ooc.run(q).stats.partition_faults)
        .sum();
    assert!(
        b.stats.partition_faults < standalone,
        "batched faults {} should undercut standalone {}",
        b.stats.partition_faults,
        standalone
    );
}

#[test]
fn reordered_streaming_session_answers_in_original_ids() {
    let g = graph();
    let want = refalgo::bfs(&g, 17);
    let incore = Session::builder().graph(g.clone()).build().unwrap();
    let scratch = incore.footprint() - incore.structure_bytes();
    let session = Session::builder()
        .graph(g)
        .reorder(Reordering::DegSort)
        .memory_budget(scratch + (incore.structure_bytes() / 8).max(1))
        .engine(EngineKind::OutOfCore {
            inner: Strategy::Full,
        })
        .build()
        .unwrap();
    assert!(session.is_streaming());
    let run = session.run(Bfs::from(17));
    assert_eq!(run.output.depth, want.depth);
}
