//! End-to-end pipeline behaviour: deterministic statistics, device memory
//! accounting / OOM semantics, and the cost-model orderings the evaluation
//! relies on.

use gcgt::core::memory;
// The low-level engine layer is exercised deliberately here; `bfs` must be
// the non-deprecated `gcgt::core` one, not the prelude shim.
use gcgt::core::bfs;
use gcgt::prelude::*;

fn device(capacity: usize) -> DeviceConfig {
    DeviceConfig::titan_v_scaled(capacity)
}

#[test]
fn full_pipeline_is_bit_deterministic() {
    let raw = web_graph(&WebParams::uk2002_like(1_200), 3);
    let run_once = || {
        let perm = Reordering::Llp(LlpConfig::default()).compute(&raw);
        let graph = raw.permuted(&perm);
        let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
        let cgr = CgrGraph::encode(&graph, &cfg);
        let engine = GcgtEngine::new(&cgr, device(1 << 30), Strategy::Full).unwrap();
        let run = bfs(&engine, 0);
        (
            cgr.bits().len(),
            run.depth,
            run.stats.est_ms.to_bits(),
            run.stats.tally,
            run.stats.mem,
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn oom_ladder_matches_footprints() {
    let graph = web_graph(&WebParams::uk2002_like(4_000), 9);
    let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
    let cgr = CgrGraph::encode(&graph, &cfg);

    let gcgt_need = memory::gcgt_footprint(&cgr);
    let csr_need = memory::csr_footprint(&graph);
    let gunrock_need = memory::gunrock_footprint(&graph);
    assert!(gcgt_need < csr_need && csr_need < gunrock_need);

    // A capacity between GCGT's and CSR's: only the compressed engine runs.
    let capacity = (gcgt_need + csr_need) / 2;
    assert!(GcgtEngine::new(&cgr, device(capacity), Strategy::Full).is_ok());
    assert!(GpuCsrEngine::new(&graph, device(capacity)).is_err());
    assert!(GunrockEngine::new(&graph, device(capacity)).is_err());

    // Between CSR and Gunrock: the platform OOMs, hand-tuned CSR fits.
    let capacity = (csr_need + gunrock_need) / 2;
    assert!(GpuCsrEngine::new(&graph, device(capacity)).is_ok());
    assert!(GunrockEngine::new(&graph, device(capacity)).is_err());
}

#[test]
fn per_query_scratch_released_between_queries() {
    // The Device::alloc audit: an engine's device starts at the uploaded
    // structure, every app adds its frontier/output scratch for the
    // duration of its query only, and `allocated()` returns to the
    // post-upload baseline between queries of a batch.
    let graph = web_graph(&WebParams::uk2002_like(900), 2).symmetrized();
    let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
    let cgr = CgrGraph::encode(&graph, &cfg);
    let engine = GcgtEngine::new(&cgr, device(1 << 30), Strategy::Full).unwrap();

    let mut dev = Expander::new_device(&engine);
    let baseline = dev.allocated();
    assert_eq!(baseline, Expander::structure_bytes(&engine));
    assert_eq!(
        Expander::scratch_bytes(&engine),
        Expander::footprint(&engine) - baseline
    );

    for query in [
        Query::Bfs(0),
        Query::Cc,
        Query::Bc(1),
        Query::Pagerank(Pagerank::default()),
        Query::LabelProp(LabelProp::default()),
        Query::Bfs(3),
    ] {
        let out = query.execute(&engine, &mut dev);
        assert_eq!(
            dev.allocated(),
            baseline,
            "{} left scratch allocated",
            query.name()
        );
        // The per-query snapshot agrees with the live device.
        assert_eq!(out.stats().allocated_bytes, baseline);
    }
}

#[test]
fn prepared_graph_thread_safety_is_a_compile_time_contract() {
    // `assert_send_sync` only compiles if the bound holds — this test pins
    // the contract that lets one Arc<PreparedGraph> back a whole worker
    // pool (and that the pool itself can be shared and moved).
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedGraph>();
    assert_send_sync::<std::sync::Arc<PreparedGraph>>();
    assert_send_sync::<Session>();
    assert_send_sync::<ServePool>();
    assert_send_sync::<ServeStats>();
    assert_send_sync::<ServeError>();
}

#[test]
fn pool_workers_return_to_their_post_upload_baseline_after_draining() {
    // The concurrency extension of the per-query scratch audit below: after
    // a pool drains a mixed workload, every worker's device must sit at its
    // post-upload baseline — scratch freed by each app, streamed partitions
    // released at each query's end.
    let graph = web_graph(&WebParams::uk2002_like(900), 2).symmetrized();
    let queries = [
        Query::Bfs(0),
        Query::Cc,
        Query::Bc(1),
        Query::Pagerank(Pagerank::default()),
        Query::LabelProp(LabelProp::default()),
        Query::Bfs(3),
        Query::Bfs(7),
        Query::Bfs(11),
    ];

    // In-core: the baseline is the uploaded structure.
    let incore = Session::builder().graph(graph.clone()).build().unwrap();
    let report = ServePool::new(incore.prepared(), 3)
        .unwrap()
        .serve(&queries);
    for w in &report.workers {
        assert_eq!(w.baseline, incore.structure_bytes(), "worker {}", w.worker);
        assert_eq!(
            w.allocated, w.baseline,
            "worker {} left scratch or partitions allocated",
            w.worker
        );
    }

    // Streaming: nothing is uploaded up front, so the baseline is zero and
    // the drain must have released every faulted partition.
    let scratch = incore.footprint() - incore.structure_bytes();
    let streaming = Session::builder()
        .graph(graph)
        .memory_budget(scratch + (incore.footprint() - scratch) / 8)
        .engine(EngineKind::OutOfCore {
            inner: Strategy::Full,
        })
        .build()
        .unwrap();
    assert!(streaming.is_streaming());
    let report = ServePool::new(streaming.prepared(), 3)
        .unwrap()
        .serve(&queries);
    let mut faulted = 0u64;
    for (i, s) in report.per_query.iter().enumerate() {
        assert!(s.partition_faults > 0, "query {i} never streamed");
        faulted += s.partition_faults;
    }
    assert!(faulted > 0);
    for w in &report.workers {
        assert_eq!(w.baseline, 0, "worker {}", w.worker);
        assert_eq!(
            w.allocated, 0,
            "worker {} kept partitions resident after the drain",
            w.worker
        );
    }
}

#[test]
fn compressed_traversal_overhead_is_bounded() {
    // The paper's headline trade-off: GCGT pays a bounded latency overhead
    // over GPUCSR (54% worst case in the paper) in exchange for the
    // compression rate. Allow a loose 3x bound here.
    let raw = web_graph(&WebParams::uk2007_like(8_000), 2);
    let perm = Reordering::Llp(LlpConfig::default()).compute(&raw);
    let graph = raw.permuted(&perm);

    let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
    let cgr = CgrGraph::encode(&graph, &cfg);
    let gcgt = GcgtEngine::new(&cgr, device(1 << 30), Strategy::Full).unwrap();
    let gpucsr = GpuCsrEngine::new(&graph, device(1 << 30)).unwrap();

    let a = bfs(&gcgt, 0).stats.est_ms;
    let b = bfs(&gpucsr, 0).stats.est_ms;
    assert!(a < 3.0 * b, "GCGT {a} ms vs GPUCSR {b} ms");
    assert!(
        cgr.compression_rate() > 5.0,
        "rate {}",
        cgr.compression_rate()
    );
}

#[test]
fn segmentation_beats_unsegmented_on_skewed_graphs() {
    // Figure 14's `inf` blow-up: on super-node graphs, removing
    // segmentation must cost at least 2x.
    let graph = social_graph(&SocialParams::twitter_like(12_000), 4);
    let seg_cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
    let seg = CgrGraph::encode(&graph, &seg_cfg);
    let seg_engine = GcgtEngine::new(&seg, device(1 << 30), Strategy::Full).unwrap();

    let unseg_cfg = Strategy::WarpCentric.cgr_config(&CgrConfig::paper_default());
    let unseg = CgrGraph::encode(&graph, &unseg_cfg);
    let unseg_engine = GcgtEngine::new(&unseg, device(1 << 30), Strategy::WarpCentric).unwrap();

    let with_seg = bfs(&seg_engine, 0).stats.est_ms;
    let without = bfs(&unseg_engine, 0).stats.est_ms;
    // (The dataset-level Figure 14 test checks the >2x gap on the full
    // twitter analogue; this standalone graph has less hub mass.)
    assert!(
        without > 1.4 * with_seg,
        "unsegmented {without} ms vs segmented {with_seg} ms"
    );
}

#[test]
fn deeper_graphs_cost_more_launches() {
    let path = toys::path(300);
    let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
    let cgr = CgrGraph::encode(&path, &cfg);
    let engine = GcgtEngine::new(&cgr, device(1 << 30), Strategy::Full).unwrap();
    let run = bfs(&engine, 0);
    assert_eq!(run.levels, 300);
    // One launch per level, including the final one that discovers nothing.
    assert_eq!(run.stats.launches as u32, 300);
}

#[test]
fn edge_list_io_feeds_the_pipeline() {
    let graph = social_graph(&SocialParams::ljournal_like(400), 11);
    let dir = std::env::temp_dir().join("gcgt_io_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.txt");
    edgelist::save(&graph, &path).unwrap();
    let loaded = edgelist::load(&path).unwrap();
    assert_eq!(loaded, graph);
    let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
    let cgr = CgrGraph::encode(&loaded, &cfg);
    let engine = GcgtEngine::new(&cgr, device(1 << 30), Strategy::Full).unwrap();
    assert_eq!(bfs(&engine, 0).depth, refalgo::bfs(&graph, 0).depth);
    std::fs::remove_file(&path).ok();
}
