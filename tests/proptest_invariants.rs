//! Property-based invariants across the whole pipeline (proptest):
//! arbitrary graphs × arbitrary CGR configurations must round-trip exactly,
//! traverse identically to the serial oracles under every strategy, and be
//! invariant under node reordering.

// Explicit imports: both `gcgt::prelude` and `proptest::prelude` export a
// `Strategy`, and glob-importing both is ambiguous.
use gcgt::core::{bfs, cc};
use gcgt::prelude::{
    refalgo, ByteRleGraph, CgrConfig, CgrGraph, Code, Csr, DeviceConfig, EngineKind, GcgtEngine,
    LabelProp, Pagerank, Query, Reordering, ServePool, Session, Strategy, VnodeConfig, VnodeGraph,
};
use proptest::prelude::{prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

/// An arbitrary small graph as (node count, edge list).
fn arb_graph() -> impl PropStrategy<Value = Csr> {
    (2usize..120).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..400)
            .prop_map(move |edges| Csr::from_edges(n, &edges))
    })
}

/// An arbitrary CGR configuration over the supported parameter space.
fn arb_config() -> impl PropStrategy<Value = CgrConfig> {
    (
        prop_oneof![
            Just(Code::Gamma),
            Just(Code::Delta),
            (1u8..6).prop_map(Code::Zeta),
        ],
        prop_oneof![Just(None), (1u32..12).prop_map(Some)],
        prop_oneof![
            Just(None),
            Just(Some(8u32)),
            Just(Some(16)),
            Just(Some(32)),
            Just(Some(64))
        ],
    )
        .prop_map(|(code, min_interval_len, segment_len_bytes)| CgrConfig {
            code,
            min_interval_len,
            segment_len_bytes,
            ..CgrConfig::paper_default()
        })
}

/// An arbitrary application query (sources are reduced modulo the node
/// count at the use site).
fn arb_query() -> impl PropStrategy<Value = Query> {
    prop_oneof![
        (0u32..1000).prop_map(Query::Bfs),
        Just(Query::Cc),
        (0u32..1000).prop_map(Query::Bc),
        Just(Query::Pagerank(Pagerank::default())),
        Just(Query::LabelProp(LabelProp::default())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cgr_round_trips_exactly(graph in arb_graph(), config in arb_config()) {
        let cgr = CgrGraph::encode(&graph, &config);
        let decoded = gcgt::cgr::decode::decode_all(&cgr);
        prop_assert_eq!(decoded, graph);
    }

    #[test]
    fn compression_stats_partition_edges(graph in arb_graph(), config in arb_config()) {
        let cgr = CgrGraph::encode(&graph, &config);
        let s = cgr.stats();
        prop_assert_eq!(s.interval_edges + s.residual_edges, graph.num_edges());
        prop_assert_eq!(s.total_bits, cgr.bits().len());
    }

    #[test]
    fn bfs_matches_oracle_under_any_strategy(
        graph in arb_graph(),
        strategy_idx in 0usize..5,
        source_seed in 0u32..1000,
    ) {
        let strategy = Strategy::LADDER[strategy_idx];
        let source = source_seed % graph.num_nodes() as u32;
        let cfg = strategy.cgr_config(&CgrConfig::paper_default());
        let cgr = CgrGraph::encode(&graph, &cfg);
        let device = DeviceConfig::titan_v_scaled(1 << 30);
        let engine = GcgtEngine::new(&cgr, device, strategy).unwrap();
        let got = bfs(&engine, source);
        let want = refalgo::bfs(&graph, source);
        prop_assert_eq!(got.depth, want.depth);
    }

    #[test]
    fn bfs_reachability_invariant_under_reordering(graph in arb_graph(), source_seed in 0u32..1000) {
        // Relabeling nodes must preserve the number of reached nodes and
        // the level structure (depth multiset).
        let n = graph.num_nodes() as u32;
        let source = source_seed % n;
        let perm = Reordering::DegSort.compute(&graph);
        let permuted = graph.permuted(&perm);

        let a = refalgo::bfs(&graph, source);
        let b = refalgo::bfs(&permuted, perm[source as usize]);
        prop_assert_eq!(a.reached, b.reached);
        let mut da: Vec<u32> = a.depth; da.sort_unstable();
        let mut db: Vec<u32> = b.depth; db.sort_unstable();
        prop_assert_eq!(da, db);
    }

    #[test]
    fn vnode_expansion_is_lossless(graph in arb_graph()) {
        let vg = VnodeGraph::compress(&graph, &VnodeConfig {
            min_pattern: 4,
            max_group: 32,
            passes: 2,
        });
        prop_assert_eq!(vg.expand(), graph);
    }

    #[test]
    fn pull_equals_push_oracle(
        graph in arb_graph(),
        source_seed in 0u32..1000,
        direction_idx in 0usize..3,
        kind_idx in 0usize..5,
    ) {
        // Arbitrary graphs × sources × DirectionMode × every EngineKind
        // (including OutOfCore under a small streaming budget): the BFS
        // QueryOutput must be bitwise identical to the serial session
        // oracle, and every mode's depths must match the reference BFS.
        use gcgt::prelude::DirectionMode;
        let direction = [DirectionMode::Push, DirectionMode::Pull, DirectionMode::Adaptive]
            [direction_idx];
        let kind = [
            EngineKind::Gcgt(Strategy::Full),
            EngineKind::Gcgt(Strategy::TaskStealing),
            EngineKind::GpuCsr,
            EngineKind::Gunrock,
            EngineKind::OutOfCore { inner: Strategy::Full },
        ][kind_idx];
        // Symmetrized: pull requires in-neighbours = stored adjacency.
        let sym = graph.symmetrized();
        let n = sym.num_nodes() as u32;
        let source = source_seed % n;
        let want = refalgo::bfs(&sym, source);

        let mut builder = Session::builder()
            .graph(sym.clone())
            .direction(direction)
            .engine(kind);
        if matches!(kind, EngineKind::OutOfCore { .. }) {
            let incore = Session::builder().graph(sym.clone()).build().unwrap();
            let scratch = incore.footprint() - incore.structure_bytes();
            builder = builder.memory_budget(scratch + (incore.structure_bytes() / 4).max(1));
        }
        let session = builder.build().unwrap();
        let a = session.run(Query::Bfs(source));
        prop_assert_eq!(a.output.as_bfs().unwrap().depth.clone(), want.depth);
        // Determinism: a second run is bitwise identical, QueryOutput's
        // PartialEq covering the embedded RunStats too.
        let b = session.run(Query::Bfs(source));
        prop_assert_eq!(a.output, b.output);
    }

    #[test]
    fn cc_agrees_with_union_find(graph in arb_graph()) {
        let sym = graph.symmetrized();
        let want = refalgo::connected_components(&sym);
        let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
        let cgr = CgrGraph::encode(&sym, &cfg);
        let device = DeviceConfig::titan_v_scaled(1 << 30);
        let engine = GcgtEngine::new(&cgr, device, Strategy::Full).unwrap();
        let got = cc(&engine);
        prop_assert_eq!(got.component, want.component);
    }

    #[test]
    fn byte_rle_round_trips(graph in arb_graph()) {
        let rle = ByteRleGraph::encode(&graph);
        for u in 0..graph.num_nodes() as u32 {
            let decoded: Vec<u32> = rle.neighbors(u).collect();
            prop_assert_eq!(decoded, graph.neighbors(u).to_vec());
        }
    }

    #[test]
    fn reorderings_always_produce_permutations(graph in arb_graph()) {
        for method in Reordering::figure13_sweep() {
            let p = method.compute(&graph);
            prop_assert!(gcgt::graph::order::is_permutation(&p), "{}", method.name());
        }
    }

    #[test]
    fn warp_decode_equals_serial_decode(
        values in proptest::collection::vec(1u64..100_000, 1..300),
        code_idx in 0usize..4,
        width_idx in 0usize..3,
    ) {
        // Algorithm 4's speculative windows must reproduce the serial
        // decoding of any codeword stream, for any code and warp width.
        let code = [Code::Gamma, Code::Zeta(2), Code::Zeta(3), Code::Zeta(5)][code_idx];
        let width = [8usize, 16, 32][width_idx];
        let mut w = gcgt::bits::BitWriter::new();
        for &v in &values {
            code.encode(&mut w, v);
        }
        let bits = w.into_bitvec();
        let table = gcgt::bits::DecodeTable::shared(code);
        let mut warp = gcgt::simt::WarpSim::new(width, 64);
        let mut decoded: Vec<u64> = Vec::new();
        let mut pos = 0usize;
        while decoded.len() < values.len() {
            let win = gcgt::core::kernels::warp_decode::parallel_decode(
                &mut warp, &bits, &table, pos,
            );
            if win.values.is_empty() {
                // Codeword wider than the window: decode serially.
                let (v, next) = code.decode_at(&bits, pos).expect("serial fallback");
                decoded.push(v);
                pos = next;
                continue;
            }
            let take = win.values.len().min(values.len() - decoded.len());
            for &(v, _) in &win.values[..take] {
                decoded.push(v);
            }
            pos += win.values[take - 1].1;
            // Lemma 5.2: rounds bounded by log2(width) + 1.
            prop_assert!(win.rounds <= (width as u32).ilog2() + 2);
        }
        prop_assert_eq!(decoded, values);
    }

    #[test]
    fn table_decode_equals_slow_decode(
        raw_bits in proptest::collection::vec(0u32..2, 0..220),
        prefix_zeros in 0usize..80,
        code_idx in 0usize..6,
    ) {
        // Differential: the DecodeTable fast path must be bitwise equal to
        // the Code::decode_at slow path on ARBITRARY bitstreams — valid
        // codewords, garbage, truncated tails, and adversarial prefixes
        // (≥64-zero unary runs; all-zero ζ payloads, i.e. codeword value
        // 0) — at every window offset, including the None cases. The
        // multi-gap probe must equal the same number of sequential slow
        // decodes, position for position.
        let code = [
            Code::Gamma,
            gcgt::bits::Code::Delta,
            Code::Zeta(2),
            Code::Zeta(3),
            Code::Zeta(4),
            Code::Zeta(5),
        ][code_idx];
        let mut w = gcgt::bits::BitWriter::new();
        for _ in 0..prefix_zeros {
            w.push_bit(false); // adversarial: long unary runs
        }
        for &b in &raw_bits {
            w.push_bit(b == 1);
        }
        let bits = w.into_bitvec();
        let table = gcgt::bits::DecodeTable::shared(code);
        for pos in 0..=bits.len() {
            prop_assert_eq!(table.decode_at(&bits, pos), code.decode_at(&bits, pos));
            let run = table.decode_packed_at(&bits, pos);
            let mut check = pos;
            for i in 0..run.len() {
                let (v, next) = code.decode_at(&bits, check)
                    .expect("packed entries are decodable by the slow path");
                prop_assert_eq!(v, run.value(i));
                prop_assert_eq!(next, pos + run.end(i));
                check = next;
            }
        }
    }

    #[test]
    fn serve_pool_equals_serial_oracles_and_conserves_work(
        graph in arb_graph(),
        raw_queries in proptest::collection::vec(arb_query(), 1..10),
        workers in 1usize..5,
    ) {
        // Arbitrary graph, arbitrary mixed query set, arbitrary worker
        // count: every pooled answer and per-query statistic must be
        // bitwise the serial `run` oracle's, and the aggregate work must
        // conserve the sum of per-query `est_ms` exactly.
        let sym = graph.symmetrized(); // Cc may appear in the mix
        let n = sym.num_nodes() as u32;
        let queries: Vec<Query> = raw_queries
            .into_iter()
            .map(|q| match q {
                Query::Bfs(s) => Query::Bfs(s % n),
                Query::Bc(s) => Query::Bc(s % n),
                other => other,
            })
            .collect();
        let prepared = Session::builder().graph(sym).build().unwrap().prepared();
        let report = ServePool::new(prepared.clone(), workers).unwrap().serve(&queries);
        prop_assert_eq!(report.outputs.len(), queries.len());
        let mut work = 0.0f64;
        let mut transfer = 0.0f64;
        for (i, q) in queries.iter().enumerate() {
            let oracle = prepared.run(*q);
            prop_assert_eq!(report.outputs[i].as_ref(), Ok(&oracle.output));
            prop_assert_eq!(&report.per_query[i], &oracle.stats);
            work += oracle.stats.est_ms;
            transfer += oracle.stats.transfer_ms;
        }
        prop_assert_eq!(report.stats.work_ms.to_bits(), work.to_bits());
        prop_assert_eq!(report.stats.transfer_ms.to_bits(), transfer.to_bits());
        prop_assert_eq!(report.stats.queries, queries.len() as u64);
        // The drained pool sits at its post-upload baselines.
        for w in &report.workers {
            prop_assert_eq!(w.allocated, w.baseline);
        }
    }

    #[test]
    fn label_propagation_matches_oracle(graph in arb_graph()) {
        let (want, _) = refalgo::label_propagation(&graph, 5);
        let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
        let cgr = CgrGraph::encode(&graph, &cfg);
        let device = DeviceConfig::titan_v_scaled(1 << 30);
        let engine = GcgtEngine::new(&cgr, device, Strategy::Full).unwrap();
        let got = gcgt::core::label_propagation(&engine, 5);
        prop_assert_eq!(got.labels, want);
    }
}
