//! GCGR v3 reference compression end-to-end.
//!
//! * `ref_window = 0` is **bitwise neutral**: payload and serialized
//!   bytes are identical to a v2 encode, across both layouts.
//! * Property tests: arbitrary graphs × `ref_window ∈ {0, 1, 4, 64}` ×
//!   chain limits × codes × both layouts round-trip through decode,
//!   through the owned v3 reader and through the zero-copy loader
//!   (eager *and* deferred validation).
//! * All five applications stay oracle-equivalent on reference-compressed
//!   graphs, with outputs and `RunStats` deterministic across reruns.
//! * Corruption regressions: a chain longer than `ref_chain_limit`, a
//!   forward/self reference and a copy-block overrun are typed errors,
//!   never panics or wrong answers.

use gcgt::bits::BitWriter;
use gcgt::cgr::io;
use gcgt::cgr::{decode, DEFAULT_REF_CHAIN_LIMIT};
use gcgt::core::{bc, bfs, cc, label_propagation, pagerank};
use gcgt::prelude::{
    refalgo, social_graph, web_graph, CgrConfig, CgrGraph, Code, Csr, DeviceConfig, GcgtEngine,
    LabelProp, Pagerank, Query, Session, SocialParams, Strategy, ValidationMode, WebParams,
};
use proptest::prelude::{prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

fn arb_graph() -> impl PropStrategy<Value = Csr> {
    (2usize..80).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..260)
            .prop_map(move |edges| Csr::from_edges(n, &edges))
    })
}

/// Configurations that exercise the reference prologue: every ref_window
/// the issue calls out, both layouts, chain limits from "no chaining" up.
fn arb_ref_config() -> impl PropStrategy<Value = CgrConfig> {
    (
        prop_oneof![
            Just(Code::Gamma),
            Just(Code::Delta),
            (2u8..5).prop_map(Code::Zeta),
        ],
        prop_oneof![Just(None), Just(Some(4u32))],
        prop_oneof![Just(None), Just(Some(32u32))],
        prop_oneof![Just(0u32), Just(1), Just(4), Just(64)],
        1u32..5,
    )
        .prop_map(
            |(code, min_interval_len, segment_len_bytes, ref_window, ref_chain_limit)| CgrConfig {
                code,
                min_interval_len,
                segment_len_bytes,
                ref_window,
                ref_chain_limit,
            },
        )
}

fn buffer(cgr: &CgrGraph) -> Vec<u8> {
    let mut buf = Vec::new();
    io::write_cgr(cgr, &mut buf).expect("in-memory write");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ref_encodes_round_trip_everywhere(graph in arb_graph(), config in arb_ref_config()) {
        let cgr = CgrGraph::encode(&graph, &config);
        // Per-node decode matches the source adjacency.
        for u in 0..graph.num_nodes() as u32 {
            prop_assert_eq!(
                decode::decode_node(&cgr, u),
                graph.neighbors(u).to_vec()
            );
            prop_assert_eq!(decode::decode_degree(&cgr, u), graph.neighbors(u).len());
        }
        // Bulk decode reproduces the CSR.
        prop_assert_eq!(&decode::decode_all(&cgr), &graph);
        // Owned reader round trip. A ref_window = 0 graph serializes as a
        // plain v2 stream (bitwise neutrality), which carries no chain
        // limit — it reads back as the default.
        let mut expected = *cgr.config();
        if expected.ref_window == 0 {
            expected.ref_chain_limit = DEFAULT_REF_CHAIN_LIMIT;
        }
        let buf = buffer(&cgr);
        let owned = io::read_cgr(&buf[..]).expect("owned read");
        prop_assert_eq!(owned.config(), &expected);
        prop_assert_eq!(owned.stats(), cgr.stats());
        prop_assert_eq!(&decode::decode_all(&owned), &graph);
        // Zero-copy load, eager and deferred validation.
        for mode in [ValidationMode::Eager, ValidationMode::Deferred] {
            let zc = CgrGraph::from_bytes_with(&buf, mode).expect("zero-copy load");
            prop_assert_eq!(zc.config(), &expected);
            prop_assert_eq!(&decode::decode_all(&zc), &graph);
        }
    }

    #[test]
    fn ref_window_zero_is_bitwise_neutral(graph in arb_graph()) {
        // An encoder asked for ref_window = 0 must emit the same payload
        // bits AND the same serialized stream as the v2 format ever did —
        // the feature is invisible until asked for.
        for segment_len_bytes in [None, Some(32u32)] {
            let v2_cfg = CgrConfig { segment_len_bytes, ..CgrConfig::paper_default() };
            assert_eq!(v2_cfg.ref_window, 0, "paper default must stay ref-free");
            let with_knob = CgrConfig { ref_chain_limit: 7, ..v2_cfg };
            let a = CgrGraph::encode(&graph, &v2_cfg);
            let b = CgrGraph::encode(&graph, &with_knob);
            prop_assert_eq!(a.bits().words(), b.bits().words());
            prop_assert_eq!(a.stats(), b.stats());
            prop_assert_eq!(buffer(&a), buffer(&b));
        }
    }
}

/// The referencing encode of a template-heavy web graph must beat the
/// non-referencing encode by >10% bits/edge (the acceptance bar; the
/// `ref` bench experiment pins the same number in BENCH.json), and the
/// milder `uk2002` shape must still never grow.
#[test]
fn web_graph_gains_from_references() {
    let graph = web_graph(&WebParams::eu2015_like(4_000), 7);
    let base = CgrGraph::encode(&graph, &CgrConfig::paper_default());
    let cfg = CgrConfig::paper_default().with_ref_window(32);
    let refs = CgrGraph::encode(&graph, &cfg);
    let s = refs.stats();
    assert!(s.ref_nodes > 0, "web generator must trigger references");
    assert!(s.ref_copied_edges > 0 && s.ref_copy_blocks > 0);
    let gain = 1.0 - s.bits_per_edge() / base.stats().bits_per_edge();
    assert!(
        gain > 0.10,
        "references must cut >10% bits/edge on the template-heavy web shape, got {:.1}%",
        gain * 100.0
    );
    assert_eq!(&decode::decode_all(&refs), &graph);

    let milder = web_graph(&WebParams::uk2002_like(4_000), 7);
    let base = CgrGraph::encode(&milder, &CgrConfig::paper_default());
    let refs = CgrGraph::encode(&milder, &cfg);
    assert!(
        refs.stats().total_bits < base.stats().total_bits,
        "references must not grow the payload: {} vs {}",
        refs.stats().total_bits,
        base.stats().total_bits
    );
}

/// All five applications on reference-compressed graphs match the serial
/// reference algorithms (exact for the discrete apps, float tolerance for
/// PageRank/BC whose accumulation order legitimately shifts when copied
/// values are emitted before corrections), on both layouts.
#[test]
fn five_apps_match_oracle_on_ref_graphs() {
    let device = DeviceConfig::titan_v_scaled(1 << 30);
    for (graph, strategy) in [
        (
            web_graph(&WebParams::uk2002_like(900), 3).symmetrized(),
            Strategy::TaskStealing,
        ),
        (
            social_graph(&SocialParams::ljournal_like(700), 5).symmetrized(),
            Strategy::Full,
        ),
    ] {
        let cfg = strategy.cgr_config(&CgrConfig::paper_default().with_ref_window(16));
        let cgr = CgrGraph::encode(&graph, &cfg);
        assert!(
            cgr.stats().ref_nodes > 0,
            "workload must exercise references ({strategy:?})"
        );
        let engine = GcgtEngine::new(&cgr, device, strategy).unwrap();

        let want = refalgo::bfs(&graph, 0);
        let got = bfs(&engine, 0);
        assert_eq!(got.depth, want.depth, "bfs {strategy:?}");
        assert_eq!(got.reached, want.reached, "bfs {strategy:?}");

        let want = refalgo::connected_components(&graph);
        let got = cc(&engine);
        assert_eq!(got.component, want.component, "cc {strategy:?}");
        assert_eq!(got.count, want.count, "cc {strategy:?}");

        let (want_labels, _) = refalgo::label_propagation(&graph, 20);
        let got = label_propagation(&engine, 20);
        assert_eq!(got.labels, want_labels, "labelprop {strategy:?}");

        let (want_ranks, _) = refalgo::pagerank(&graph, refalgo::PagerankConfig::default());
        let got = pagerank(&engine, 0.85, 100, 1e-9);
        for (i, (&a, &b)) in got.ranks.iter().zip(&want_ranks).enumerate() {
            assert!((a - b).abs() < 1e-6, "rank[{i}] {a} vs {b} ({strategy:?})");
        }

        let want = refalgo::betweenness_from_source(&graph, 0);
        let got = bc(&engine, 0);
        assert_eq!(got.depth, want.depth, "bc {strategy:?}");
        assert_eq!(got.sigma, want.sigma, "bc σ is exact in f64 ({strategy:?})");
        for (i, (&a, &b)) in got.delta.iter().zip(&want.delta).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
                "δ[{i}] {a} vs {b} ({strategy:?})"
            );
        }
    }
}

/// Reruns of the five apps through the Session layer on a
/// reference-compressed graph are bitwise deterministic — identical
/// `QueryOutput` AND `RunStats`.
#[test]
fn session_reruns_are_deterministic_on_ref_graphs() {
    let g = web_graph(&WebParams::uk2002_like(900), 77).symmetrized();
    let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default().with_ref_window(16));
    let session = Session::builder()
        .graph(g.clone())
        .compress(cfg)
        .build()
        .unwrap();
    assert!(session.cgr().expect("compressed session").stats().ref_nodes > 0);
    let n = g.num_nodes() as u32;
    let queries = [
        Query::Bfs(3 % n),
        Query::Cc,
        Query::Bc(5 % n),
        Query::Pagerank(Pagerank::default()),
        Query::LabelProp(LabelProp::default()),
    ];
    for q in queries {
        let a = session.run(q);
        let b = session.run(q);
        assert_eq!(a.output, b.output, "{q:?} rerun output");
        assert_eq!(a.stats, b.stats, "{q:?} rerun stats");
    }
}

// ---------------------------------------------------------------------------
// Corruption regressions: hand-corrupted prologues are typed errors.
// ---------------------------------------------------------------------------

/// Chains deeper than `ref_chain_limit` are rejected by validation: encode
/// with a generous limit, reload claiming a tighter one (header word 16's
/// high half).
#[test]
fn chain_limit_overflow_is_a_typed_error() {
    // Every node links the same scattered "boilerplate" targets, so every
    // node references its predecessor and chains build to the limit.
    let n = 128usize;
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for k in 0..8u32 {
            let v = 10 + 15 * k;
            if v != u {
                edges.push((u, v));
            }
        }
    }
    let graph = Csr::from_edges(n, &edges);
    let cfg = CgrConfig {
        min_interval_len: None,
        ..CgrConfig::paper_default()
            .with_ref_window(8)
            .with_ref_chain_limit(6)
    };
    let cgr = CgrGraph::encode(&graph, &cfg);
    let max_chain = (0..n as u32)
        .map(|u| {
            let mut len = 0;
            let mut v = u;
            while let Some(t) = cgr.ref_target(v) {
                len += 1;
                v = t;
            }
            len
        })
        .max()
        .unwrap();
    assert!(
        max_chain > 1,
        "graph must form real chains (got {max_chain})"
    );

    let mut buf = buffer(&cgr);
    // w16: low half = ref_window, high half = ref_chain_limit. Claim 1.
    buf[16 * 8 + 4..16 * 8 + 8].copy_from_slice(&1u32.to_le_bytes());
    let err = CgrGraph::from_bytes_with(&buf, ValidationMode::Eager)
        .expect_err("tighter chain limit must fail validation");
    assert!(
        err.to_string().contains("ref_chain_limit"),
        "unexpected error: {err}"
    );

    // Deferred validation surfaces the same rejection at first touch.
    let lazy = CgrGraph::from_bytes_with(&buf, ValidationMode::Deferred)
        .expect("deferred load must succeed");
    let err = lazy
        .ensure_validated_all()
        .expect_err("deferred touch must reject the chain");
    assert!(err.contains("ref_chain_limit"), "unexpected error: {err}");
}

/// A graph whose node 1 copies node 0's whole 8-value scattered list
/// (scattered, so the reference is cost-effective), plus the config.
fn tiny_ref_graph() -> (CgrGraph, CgrConfig) {
    let n = 120usize;
    let mut edges = Vec::new();
    for k in 0..8u32 {
        let v = 10 + 15 * k;
        edges.push((0, v));
        edges.push((1, v));
    }
    let graph = Csr::from_edges(n, &edges);
    let cfg = CgrConfig {
        code: Code::Gamma,
        min_interval_len: None,
        segment_len_bytes: None,
        ..CgrConfig::paper_default().with_ref_window(4)
    };
    let cgr = CgrGraph::encode(&graph, &cfg);
    assert_eq!(cgr.ref_target(1), Some(0), "node 1 must reference node 0");
    (cgr, cfg)
}

/// Overwrites the codeword at payload bit `pos` with `code(value)` in a
/// serialized GCGR buffer (payload is the final section of the stream).
fn patch_payload_codeword(buf: &mut [u8], payload_words: usize, pos: usize, value: u64) {
    let payload_start = buf.len() - payload_words * 8;
    let mut w = BitWriter::new();
    Code::Gamma.encode(&mut w, value);
    let bv = w.into_bitvec();
    for i in 0..bv.len() {
        // BitVec is MSB-first within each little-endian u64 word: stream
        // bit b lives in word b/64 at u64 bit 63 - b%64.
        let b = pos + i;
        let lsb = 63 - (b % 64);
        let byte = payload_start + (b / 64) * 8 + lsb / 8;
        let mask = 1u8 << (lsb % 8);
        if bv.get(i) {
            buf[byte] |= mask;
        } else {
            buf[byte] &= !mask;
        }
    }
}

/// A self/forward reference (offset escaping the node id) is a typed
/// error: corrupt node 1's refOffset from "1 back" to "2 back" — past
/// node 0, an unrepresentable forward/underflowing target. γ(2) and γ(3)
/// have the same width, so the rest of the stream stays aligned.
#[test]
fn forward_or_self_reference_is_a_typed_error() {
    let (cgr, _) = tiny_ref_graph();
    let start = cgr.offset(1);
    let (_deg, ref_pos) = cgr.read_count(start).expect("degNum");
    let (off, _) = cgr.read_ref_offset(ref_pos).expect("refOffset");
    assert_eq!(off, 1);
    let mut buf = buffer(&cgr);
    patch_payload_codeword(&mut buf, cgr.bits().words().len(), ref_pos, 3);
    let err = CgrGraph::from_bytes_with(&buf, ValidationMode::Eager)
        .expect_err("forward ref must be rejected");
    assert!(
        err.to_string().contains("forward/self reference"),
        "unexpected error: {err}"
    );
}

/// Copy blocks spanning more values than the referenced adjacency holds
/// are a typed error (the issue's "copy-bitmask overrun"): bump node 1's
/// single block length from 8 to 14 (γ(9) and γ(15) have equal width).
#[test]
fn copy_block_overrun_is_a_typed_error() {
    let (cgr, _) = tiny_ref_graph();
    let start = cgr.offset(1);
    let (_deg, ref_pos) = cgr.read_count(start).expect("degNum");
    let (off, blk_pos) = cgr.read_ref_offset(ref_pos).expect("refOffset");
    assert_eq!(off, 1);
    let (blk_num, len_pos) = cgr.read_count(blk_pos).expect("blockNum");
    assert_eq!(blk_num, 1, "one all-copy block expected");
    let (len, _) = cgr.read_block_len(len_pos).expect("blockLen");
    assert_eq!(len, 8);
    let mut buf = buffer(&cgr);
    // write_block_len encodes len + 1: 15 decodes to a span of 14 > 8.
    patch_payload_codeword(&mut buf, cgr.bits().words().len(), len_pos, 15);
    let err = CgrGraph::from_bytes_with(&buf, ValidationMode::Eager)
        .expect_err("copy-block overrun must be rejected");
    assert!(
        err.to_string().contains("copy blocks span"),
        "unexpected error: {err}"
    );
}

/// v1 serialization cannot carry references; asking for it is an error,
/// not a silently wrong stream.
#[test]
fn write_cgr_v1_rejects_ref_graphs() {
    let (cgr, _) = tiny_ref_graph();
    let mut buf = Vec::new();
    let err = io::write_cgr_v1(&cgr, &mut buf).expect_err("v1 write must fail");
    assert!(err.to_string().contains("reference compression"));
}

/// A v3 stream round-trips its knobs: loading honours the stored chain
/// limit and window, not the defaults.
#[test]
fn v3_header_round_trips_knobs() {
    let graph = web_graph(&WebParams::uk2002_like(600), 11);
    let cfg = CgrConfig::paper_default()
        .with_ref_window(9)
        .with_ref_chain_limit(DEFAULT_REF_CHAIN_LIMIT + 2);
    let cgr = CgrGraph::encode(&graph, &cfg);
    let loaded = io::read_cgr(&buffer(&cgr)[..]).expect("v3 read");
    assert_eq!(loaded.config().ref_window, 9);
    assert_eq!(loaded.config().ref_chain_limit, DEFAULT_REF_CHAIN_LIMIT + 2);
    assert_eq!(loaded.stats(), cgr.stats());
}
