//! Differential concurrency suite: for **every** engine kind — including
//! out-of-core streaming under a tiny budget — the same mixed query set
//! through a 1-worker pool, a 4-worker pool, and serial `Session::run`
//! oracles must produce bitwise-identical outputs and identical per-query
//! `RunStats`. Worker count and host-thread scheduling change *when* a
//! query runs, never *what it computes or costs*.
//!
//! These tests run under the default `--test-threads`, racing real worker
//! threads against each other and against the other integration tests —
//! there is no serialization hack anywhere; the determinism is structural.

use std::sync::Arc;

use gcgt::prelude::*;

fn graph() -> Csr {
    // Symmetrized so Cc is meaningful in the mixed set.
    web_graph(&WebParams::uk2002_like(700), 19).symmetrized()
}

fn mixed_queries() -> Vec<Query> {
    vec![
        Query::Bfs(0),
        Query::Pagerank(Pagerank::default()),
        Query::Bfs(7),
        Query::Cc,
        Query::Bc(3),
        Query::LabelProp(LabelProp::default()),
        Query::Bfs(42),
        Query::Bfs(7), // duplicate on purpose: identical answers expected
    ]
}

fn all_engine_kinds() -> Vec<EngineKind> {
    let mut kinds: Vec<EngineKind> = Strategy::LADDER.into_iter().map(EngineKind::Gcgt).collect();
    kinds.push(EngineKind::GpuCsr);
    kinds.push(EngineKind::Gunrock);
    kinds
}

/// A prepared graph for `kind` over the shared test graph; `OutOfCore`
/// kinds get a budget of scratch plus an eighth of the structure, so the
/// pool's workers really stream with eviction churn.
fn prepare(kind: EngineKind, g: &Csr) -> Arc<PreparedGraph> {
    let builder = Session::builder()
        .graph(g.clone())
        .device(DeviceConfig::titan_v_scaled(1 << 30))
        .engine(kind);
    let builder = if matches!(kind, EngineKind::OutOfCore { .. }) {
        let incore = Session::builder().graph(g.clone()).build().unwrap();
        let scratch = incore.footprint() - incore.structure_bytes();
        builder.memory_budget(scratch + (incore.structure_bytes() / 8).max(1))
    } else {
        builder
    };
    builder.build().unwrap().prepared()
}

fn assert_pools_match_oracle(kind: EngineKind) {
    let g = graph();
    let prepared = prepare(kind, &g);
    let queries = mixed_queries();

    let one = ServePool::new(prepared.clone(), 1).unwrap().serve(&queries);
    let four = ServePool::new(prepared.clone(), 4).unwrap().serve(&queries);

    for (i, query) in queries.iter().enumerate() {
        let oracle = prepared.run(*query);
        // Bitwise-identical outputs (depths, components, σ/δ, float ranks,
        // labels — `QueryOutput: PartialEq` compares them all, plus the
        // embedded per-run statistics).
        assert_eq!(
            one.outputs[i],
            Ok(oracle.output.clone()),
            "{kind:?} query {i} (1w)"
        );
        assert_eq!(
            four.outputs[i],
            Ok(oracle.output),
            "{kind:?} query {i} (4w)"
        );
        // Identical per-query RunStats: scheduling must not change
        // simulated work — launches, tallies, memory counters, est_ms,
        // faults, evictions, transfer_ms, residency.
        assert_eq!(one.per_query[i], oracle.stats, "{kind:?} query {i} (1w)");
        assert_eq!(four.per_query[i], oracle.stats, "{kind:?} query {i} (4w)");
    }
    // The two pools therefore agree with each other wholesale.
    assert_eq!(one.outputs, four.outputs, "{kind:?}");
    assert_eq!(one.per_query, four.per_query, "{kind:?}");
    // Work is conserved exactly across worker counts.
    assert_eq!(
        one.stats.work_ms.to_bits(),
        four.stats.work_ms.to_bits(),
        "{kind:?}"
    );
    assert_eq!(one.stats.launches, four.stats.launches, "{kind:?}");
}

#[test]
fn every_in_core_engine_kind_is_scheduling_independent() {
    for kind in all_engine_kinds() {
        assert_pools_match_oracle(kind);
    }
}

#[test]
fn out_of_core_streaming_is_scheduling_independent() {
    let kind = EngineKind::OutOfCore {
        inner: Strategy::Full,
    };
    let g = graph();
    let prepared = prepare(kind, &g);
    assert!(prepared.is_streaming(), "budget must force streaming");
    assert!(prepared.num_partitions().unwrap() >= 8);
    assert_pools_match_oracle(kind);

    // And the streaming runs really faulted and evicted per query — the
    // per-worker caches start cold for every query, which is exactly what
    // makes the statistics scheduling-independent.
    let report = ServePool::new(prepared.clone(), 4)
        .unwrap()
        .serve(&mixed_queries());
    for (i, stats) in report.per_query.iter().enumerate() {
        assert!(stats.partition_faults >= 1, "query {i} never faulted");
        assert!(stats.transfer_ms > 0.0, "query {i} streamed nothing");
    }
    for w in &report.workers {
        assert_eq!(w.baseline, 0, "streaming workers upload nothing up front");
        assert_eq!(
            w.allocated, 0,
            "worker {} kept partitions resident",
            w.worker
        );
    }
}

/// Direction-optimizing sessions keep the determinism contract: the same
/// adaptive (push/pull-switching) BFS mix through 1- and 4-worker pools is
/// bitwise the serial oracle — outputs **and** per-query `RunStats`,
/// including the new `pull_steps` / `pulled_edges` counters — at any worker
/// count, in-core and streaming out-of-core alike.
#[test]
fn direction_optimizing_pools_are_scheduling_independent() {
    // Low diameter + symmetrized so the adaptive heuristic really pulls.
    let g = social_graph(&SocialParams::twitter_like(700), 23).symmetrized();
    let queries: Vec<Query> = vec![Query::Bfs(0), Query::Bfs(5), Query::Bfs(31), Query::Bfs(0)];
    for kind in [
        EngineKind::Gcgt(Strategy::Full),
        EngineKind::OutOfCore {
            inner: Strategy::Full,
        },
    ] {
        let mut builder = Session::builder()
            .graph(g.clone())
            .device(DeviceConfig::titan_v_scaled(1 << 30))
            .direction(DirectionMode::Adaptive)
            .engine(kind);
        if matches!(kind, EngineKind::OutOfCore { .. }) {
            let incore = Session::builder().graph(g.clone()).build().unwrap();
            let scratch = incore.footprint() - incore.structure_bytes();
            builder = builder.memory_budget(scratch + (incore.structure_bytes() / 8).max(1));
        }
        let prepared = builder.build().unwrap().prepared();

        let one = ServePool::new(prepared.clone(), 1).unwrap().serve(&queries);
        let four = ServePool::new(prepared.clone(), 4).unwrap().serve(&queries);
        for (i, query) in queries.iter().enumerate() {
            let oracle = prepared.run(*query);
            assert_eq!(
                one.outputs[i],
                Ok(oracle.output.clone()),
                "{kind:?} query {i} (1w)"
            );
            assert_eq!(
                four.outputs[i],
                Ok(oracle.output),
                "{kind:?} query {i} (4w)"
            );
            assert_eq!(one.per_query[i], oracle.stats, "{kind:?} query {i} (1w)");
            assert_eq!(four.per_query[i], oracle.stats, "{kind:?} query {i} (4w)");
        }
        // The mode switch really happened — this suite is not vacuous.
        assert!(
            four.per_query.iter().any(|s| s.pull_steps >= 1),
            "{kind:?}: no query ever pulled"
        );
    }
}

#[test]
fn duplicate_queries_answer_identically_within_one_report() {
    let g = graph();
    let prepared = prepare(EngineKind::Gcgt(Strategy::Full), &g);
    let queries = mixed_queries(); // queries[2] and queries[7] are both Bfs(7)
    let report = ServePool::new(prepared, 3).unwrap().serve(&queries);
    assert_eq!(report.outputs[2], report.outputs[7]);
    assert_eq!(report.per_query[2], report.per_query[7]);
}

#[test]
fn reordered_prepared_graph_serves_in_original_ids() {
    let g = graph();
    let want = refalgo::bfs(&g, 17);
    let prepared = Session::builder()
        .graph(g)
        .reorder(Reordering::DegSort)
        .build()
        .unwrap()
        .prepared();
    let report = ServePool::new(prepared, 2)
        .unwrap()
        .serve(&[Query::Bfs(17), Query::Bfs(17)]);
    for out in &report.outputs {
        match out {
            Ok(QueryOutput::Bfs(run)) => assert_eq!(run.depth, want.depth),
            other => panic!("expected Bfs output, got {other:?}"),
        }
    }
}

#[test]
fn zero_worker_pool_is_a_typed_build_error() {
    let prepared = prepare(EngineKind::Gcgt(Strategy::Full), &graph());
    let err = ServePool::new(prepared.clone(), 0).unwrap_err();
    assert_eq!(err, ServeError::ZeroWorkers);
    assert!(err.to_string().contains("at least one worker"));
    assert_eq!(
        ServePool::with_queue_capacity(prepared, 4, 0).unwrap_err(),
        ServeError::ZeroQueueCapacity
    );
}

#[test]
fn empty_query_batch_reports_empty_stats_without_dividing_by_zero() {
    let prepared = prepare(EngineKind::Gcgt(Strategy::Full), &graph());
    let report = ServePool::new(prepared, 4).unwrap().serve::<Query>(&[]);
    assert!(report.outputs.is_empty());
    let s = &report.stats;
    assert_eq!(s.queries, 0);
    assert_eq!(s.makespan_ms, 0.0);
    assert_eq!((s.p50_ms, s.p95_ms, s.p99_ms), (0.0, 0.0, 0.0));
    // Every derived ratio is guarded, never NaN/inf.
    assert_eq!(s.mean_query_ms(), 0.0);
    assert_eq!(s.throughput_qps(), 0.0);
    assert_eq!(s.speedup(), 1.0);
    assert!(s.mean_query_ms().is_finite() && s.throughput_qps().is_finite());
}

#[test]
fn latency_percentiles_come_from_the_deterministic_fifo_timeline() {
    let prepared = prepare(EngineKind::Gcgt(Strategy::Full), &graph());
    let queries = mixed_queries();
    let one = ServePool::new(prepared.clone(), 1).unwrap().serve(&queries);
    // On one worker the timeline is the prefix-sum of per-query costs, so
    // p99 is the completion of the whole set and the makespan equals the
    // total cost.
    let total: f64 = one.per_query.iter().map(|s| s.est_ms + s.transfer_ms).sum();
    assert!((one.stats.makespan_ms - total).abs() < 1e-12);
    assert!((one.stats.p99_ms - total).abs() < 1e-12);

    // More workers: strictly earlier finish, never-worse tail latency, and
    // throughput that scales.
    let four = ServePool::new(prepared, 4).unwrap().serve(&queries);
    assert!(four.stats.makespan_ms < one.stats.makespan_ms);
    assert!(four.stats.p99_ms <= one.stats.p99_ms);
    assert!(four.stats.p50_ms <= one.stats.p50_ms);
    assert!(four.stats.throughput_qps() > one.stats.throughput_qps());
}
