//! The Session API contract: builder validation, cross-engine equivalence,
//! id-space ownership under reordering, and batched multi-query residency.

use gcgt::prelude::*;

fn web() -> Csr {
    web_graph(&WebParams::uk2002_like(900), 5)
}

fn all_engine_kinds() -> Vec<EngineKind> {
    let mut kinds: Vec<EngineKind> = Strategy::LADDER.into_iter().map(EngineKind::Gcgt).collect();
    kinds.push(EngineKind::GpuCsr);
    kinds.push(EngineKind::Gunrock);
    kinds
}

// --- builder validation -------------------------------------------------

#[test]
fn builder_rejects_missing_and_empty_graphs() {
    assert_eq!(
        Session::builder().build().unwrap_err(),
        SessionError::MissingGraph
    );
    assert_eq!(
        Session::builder()
            .graph(Csr::from_edges(0, &[]))
            .build()
            .unwrap_err(),
        SessionError::EmptyGraph
    );
}

#[test]
fn builder_rejects_oom_devices_for_every_engine_kind() {
    let g = web();
    let device = DeviceConfig {
        mem_capacity: 64,
        ..DeviceConfig::default()
    };
    for kind in all_engine_kinds() {
        let err = Session::builder()
            .graph(g.clone())
            .device(device)
            .engine(kind)
            .build()
            .unwrap_err();
        match err {
            SessionError::Oom(oom) => {
                assert_eq!(oom.capacity, 64, "{}", kind.name());
                assert!(oom.requested > oom.capacity, "{}", kind.name());
            }
            other => panic!("{}: expected Oom, got {other:?}", kind.name()),
        }
    }
}

#[test]
fn builder_rejects_layout_mismatches_both_ways() {
    let g = toys::figure1();
    // Segmented config × strategy that reads the unsegmented layout.
    let err = Session::builder()
        .graph(g.clone())
        .engine(EngineKind::Gcgt(Strategy::TaskStealing))
        .compress(CgrConfig::paper_default()) // segmented
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        SessionError::LayoutMismatch {
            strategy: Strategy::TaskStealing,
            config_segmented: true,
        }
    ));
    // Unsegmented config × the full (segment-traversing) GCGT.
    let err = Session::builder()
        .graph(g)
        .engine(EngineKind::Gcgt(Strategy::Full))
        .compress(CgrConfig::unsegmented())
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        SessionError::LayoutMismatch {
            strategy: Strategy::Full,
            config_segmented: false,
        }
    ));
}

// --- cross-engine equivalence -------------------------------------------

#[test]
fn bfs_matches_the_serial_oracle_for_every_engine_kind() {
    let g = web();
    let want = refalgo::bfs(&g, 0);
    let shared = std::sync::Arc::new(g);
    for kind in all_engine_kinds() {
        let session = kind
            .session(shared.clone(), DeviceConfig::titan_v_scaled(1 << 30))
            .unwrap();
        let run = session.run(Bfs::from(0));
        assert_eq!(run.output.depth, want.depth, "{kind:?}");
        assert_eq!(run.output.reached, want.reached, "{kind:?}");
    }
}

#[test]
fn reordered_sessions_answer_in_original_ids_for_every_engine_kind() {
    let g = web();
    let source = 17u32;
    let want = refalgo::bfs(&g, source);
    for kind in all_engine_kinds() {
        let session = Session::builder()
            .graph(g.clone())
            .reorder(Reordering::DegSort)
            .device(DeviceConfig::titan_v_scaled(1 << 30))
            .engine(kind)
            .build()
            .unwrap();
        assert!(session.permutation().is_some());
        let run = session.run(Bfs::from(source));
        assert_eq!(run.output.depth, want.depth, "{kind:?}");
    }
}

#[test]
fn cc_and_bc_and_pagerank_match_oracles_through_sessions() {
    let g = social_graph(&SocialParams::ljournal_like(500), 6);

    let cc_session = Session::builder()
        .graph(g.clone())
        .symmetrize(true)
        .build()
        .unwrap();
    let got = cc_session.run(Cc);
    let want = refalgo::connected_components(&g.symmetrized());
    assert_eq!(got.output.component, want.component);
    assert_eq!(got.output.count, want.count);

    let session = Session::builder().graph(g.clone()).build().unwrap();
    let bc_run = session.run(Bc::from(0));
    let bc_want = refalgo::betweenness_from_source(&g, 0);
    assert_eq!(bc_run.output.sigma, bc_want.sigma);

    let pr_run = session.run(Pagerank::default());
    let (pr_want, _) = refalgo::pagerank(&g, refalgo::PagerankConfig::default());
    for (i, (&a, &b)) in pr_run.output.ranks.iter().zip(&pr_want).enumerate() {
        assert!((a - b).abs() < 1e-6, "rank[{i}] {a} vs {b}");
    }
}

#[test]
fn cc_through_a_reordered_session_matches_the_oracle() {
    // The session symmetrizes, reorders, traverses, and maps component
    // labels back to canonical original-id representatives.
    let g = social_graph(&SocialParams::ljournal_like(400), 9);
    let want = refalgo::connected_components(&g.symmetrized());
    let session = Session::builder()
        .graph(g)
        .symmetrize(true)
        .reorder(Reordering::DegSort)
        .build()
        .unwrap();
    let got = session.run(Cc);
    assert_eq!(got.output.component, want.component);
    assert_eq!(got.output.count, want.count);
}

// --- batched multi-query traversal --------------------------------------

#[test]
fn batch_over_eight_sources_reuses_one_device_residency() {
    let g = web();
    let session = Session::builder().graph(g).build().unwrap();
    let sources: Vec<Bfs> = (0..10).map(Bfs::from).collect();
    let batch = session.run_batch(&sources);

    // One upload, one residency: after every query its scratch is freed,
    // so the aggregate RunStats reports exactly one structure's worth of
    // allocated bytes — identical to a single run's — while the work of
    // all queries accumulated on that device.
    assert_eq!(batch.uploads, 1);
    let single = session.run(Bfs::from(0));
    assert_eq!(batch.stats.allocated_bytes, single.stats.allocated_bytes);
    assert_eq!(batch.stats.allocated_bytes, session.structure_bytes());
    assert!(session.structure_bytes() < session.footprint());
    // Between queries the device sits at the post-upload baseline: every
    // per-query snapshot reports the structure alone, scratch released.
    for (i, q) in batch.per_query.iter().enumerate() {
        assert_eq!(
            q.allocated_bytes,
            session.structure_bytes(),
            "query {i} left scratch allocated"
        );
    }
    assert_eq!(
        batch.stats.launches,
        batch.per_query.iter().map(|s| s.launches).sum::<u64>()
    );
    assert!(batch.stats.launches > single.stats.launches);

    // Per-query outputs are real per-query results.
    assert_eq!(batch.outputs.len(), 10);
    for (i, out) in batch.outputs.iter().enumerate() {
        assert_eq!(out.depth[i], 0, "query {i} starts at its own source");
    }

    // Amortization: one upload beats ten.
    let standalone: f64 = (0..10).map(|s| session.run(Bfs::from(s)).total_ms()).sum();
    assert!(
        batch.total_ms() < standalone,
        "batched {} ms vs standalone {} ms",
        batch.total_ms(),
        standalone
    );
}

#[test]
fn heterogeneous_query_batches_run_on_one_residency() {
    let g = social_graph(&SocialParams::ljournal_like(300), 3);
    let session = Session::builder()
        .graph(g.clone())
        .symmetrize(true)
        .build()
        .unwrap();
    let queries = [
        Query::Bfs(0),
        Query::Cc,
        Query::Bc(1),
        Query::Pagerank(Pagerank::default()),
        Query::LabelProp(LabelProp::default()),
    ];
    let batch = session.run_batch(&queries);
    assert_eq!(batch.uploads, 1);
    assert_eq!(batch.outputs.len(), queries.len());
    let sym = g.symmetrized();
    match &batch.outputs[0] {
        QueryOutput::Bfs(run) => assert_eq!(run.depth, refalgo::bfs(&sym, 0).depth),
        other => panic!("expected Bfs output, got {other:?}"),
    }
    match &batch.outputs[1] {
        QueryOutput::Cc(run) => {
            assert_eq!(run.component, refalgo::connected_components(&sym).component)
        }
        other => panic!("expected Cc output, got {other:?}"),
    }
    // Per-query stats partition the aggregate.
    let total: f64 = batch.per_query.iter().map(|s| s.est_ms).sum();
    assert!((total - batch.stats.est_ms).abs() < 1e-9);
}

#[test]
fn batch_per_query_stats_are_deterministic_and_match_standalone_runs() {
    let g = web();
    let session = Session::builder().graph(g).build().unwrap();
    let sources: Vec<Bfs> = (0..4).map(Bfs::from).collect();
    let batch = session.run_batch(&sources);
    for (i, per) in batch.per_query.iter().enumerate() {
        let single = session.run(Bfs::from(i as u32));
        assert_eq!(per.launches, single.stats.launches, "query {i}");
        assert_eq!(per.tally, single.stats.tally, "query {i}");
        assert!(
            (per.est_ms - single.stats.est_ms).abs() < 1e-12,
            "query {i}"
        );
    }
}

// --- direction-optimizing traversal (acceptance) ------------------------

/// The PR's acceptance contract: `DirectionMode::Adaptive` BFS output is
/// bitwise `DirectionMode::Push`'s on **every** engine kind (and so are the
/// per-query `RunStats` whenever the density heuristic picks push at every
/// level — here forced by a sparse-frontier graph); on the low-diameter
/// generator the adaptive schedule must expand strictly fewer edges.
#[test]
fn adaptive_direction_acceptance_across_engine_kinds() {
    // High-diameter symmetric chain: the heuristic never fires, so
    // adaptive == push bitwise, output and statistics alike.
    let chain = {
        let n = 400u32;
        let edges: Vec<(NodeId, NodeId)> =
            (0..n - 1).flat_map(|i| [(i, i + 1), (i + 1, i)]).collect();
        Csr::from_edges(n as usize, &edges)
    };
    for kind in all_engine_kinds() {
        let run_with = |direction: DirectionMode| {
            Session::builder()
                .graph(chain.clone())
                .engine(kind)
                .direction(direction)
                .build()
                .unwrap()
                .run(Bfs::from(0))
        };
        let push = run_with(DirectionMode::Push);
        let adaptive = run_with(DirectionMode::Adaptive);
        assert_eq!(push.output, adaptive.output, "{kind:?}");
        assert_eq!(push.stats, adaptive.stats, "{kind:?}");
    }

    // Low-diameter social graph: adaptive pulls and saves expanded edges
    // while answering identically (output depths bitwise equal).
    let social = social_graph(&SocialParams::twitter_like(800), 12);
    for kind in all_engine_kinds() {
        let run_with = |direction: DirectionMode| {
            Session::builder()
                .graph(social.clone())
                .symmetrize(true)
                .engine(kind)
                .direction(direction)
                .build()
                .unwrap()
                .run(Bfs::from(0))
        };
        let push = run_with(DirectionMode::Push);
        let adaptive = run_with(DirectionMode::Adaptive);
        assert_eq!(push.output.depth, adaptive.output.depth, "{kind:?}");
        assert!(adaptive.stats.pull_steps >= 1, "{kind:?}");
        assert!(
            adaptive.stats.pushed_edges + adaptive.stats.pulled_edges
                < push.stats.pushed_edges + push.stats.pulled_edges,
            "{kind:?}"
        );
    }
}

#[test]
fn direction_defaults_to_push_and_run_batch_composes() {
    let session = Session::builder().graph(web()).build().unwrap();
    assert_eq!(session.direction(), DirectionMode::Push);

    // Batched adaptive queries share one residency and keep per-query
    // direction counters attributable.
    let sym = Session::builder()
        .graph(web())
        .symmetrize(true)
        .direction(DirectionMode::Adaptive)
        .build()
        .unwrap();
    let sources: Vec<Bfs> = (0..4).map(Bfs::from).collect();
    let batch = sym.run_batch(&sources);
    assert_eq!(batch.uploads, 1);
    for (i, per) in batch.per_query.iter().enumerate() {
        let solo = sym.run(sources[i]);
        assert_eq!(solo.output.depth, batch.outputs[i].depth, "query {i}");
        assert_eq!(solo.stats.pull_steps, per.pull_steps, "query {i}");
        assert_eq!(solo.stats.pushed_edges, per.pushed_edges, "query {i}");
    }
}

// --- compress-time code autotuning --------------------------------------

/// `compress_auto()` picks the code per dataset at build time. On a
/// paper-like web graph the tuner lands on ζ3 — the default — so the whole
/// session (encoding, stats, query output) is identical to the untuned
/// build; an explicit `compress(..)` still takes precedence.
#[test]
fn compress_auto_tunes_the_code_per_dataset() {
    let g = web_graph(&WebParams::eu2015_like(900), 5);
    let device = DeviceConfig::titan_v_scaled(1 << 30);
    let auto = Session::builder()
        .graph(g.clone())
        .compress_auto()
        .device(device)
        .build()
        .unwrap();
    assert_eq!(auto.cgr().unwrap().config().code, Code::Zeta(3));
    let default = Session::builder()
        .graph(g.clone())
        .device(device)
        .build()
        .unwrap();
    assert_eq!(
        auto.cgr().unwrap().stats(),
        default.cgr().unwrap().stats(),
        "ζ3 autotune must be bitwise the default build"
    );
    let want = refalgo::bfs(&g, 0);
    let run = auto.run(Bfs::from(0));
    assert_eq!(run.output.depth, want.depth);
    assert_eq!(run.output.reached, want.reached);

    // Explicit compress(..) wins over the tuner.
    let explicit = Session::builder()
        .graph(g)
        .compress_auto()
        .compress(CgrConfig {
            code: Code::Delta,
            ..CgrConfig::paper_default()
        })
        .device(device)
        .build()
        .unwrap();
    assert_eq!(explicit.cgr().unwrap().config().code, Code::Delta);
}
