//! Sharded-traversal oracle equivalence: every application, at every shard
//! count, over every inner engine kind — including streaming out-of-core
//! under a per-device budget — produces answers **bitwise identical** to
//! the serial single-device run, with identical kernel-side `RunStats`.
//! Sharding moves cost into the separate frontier-exchange counters
//! (`exchange_ms`, `boundary_nodes`, `sync_steps`); it never changes what a
//! traversal computes or what the kernels are charged.

// Explicit imports: both `gcgt::prelude` and `proptest::prelude` export a
// `Strategy`, and glob-importing both is ambiguous.
use gcgt::prelude::{
    refalgo, social_graph, web_graph, Bfs, Csr, DeviceConfig, DirectionMode, EngineKind, LabelProp,
    Pagerank, Query, QueryOutput, Reordering, RunStats, ServePool, Session, SessionError,
    SocialParams, Strategy, WebParams,
};
use proptest::prelude::{prop_assert_eq, proptest, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

fn graph() -> Csr {
    // Symmetrized so connected components are meaningful; big enough that
    // eight shards all own real work.
    web_graph(&WebParams::uk2002_like(1_200), 23).symmetrized()
}

fn mixed_queries() -> Vec<Query> {
    vec![
        Query::Bfs(0),
        Query::Cc,
        Query::Bc(5),
        Query::Pagerank(Pagerank::default()),
        Query::LabelProp(LabelProp::default()),
        Query::Bfs(311),
    ]
}

/// The kernel-side view of [`RunStats`]: exchange counters zeroed, so a
/// sharded run can be compared bitwise against its single-device oracle.
fn kernel_side(stats: RunStats) -> RunStats {
    RunStats {
        exchange_ms: 0.0,
        boundary_nodes: 0,
        sync_steps: 0,
        ..stats
    }
}

/// Compares the application answers of two query outputs, ignoring the
/// embedded per-run statistics (which legitimately differ by the exchange
/// counters between sharded and serial runs).
fn assert_same_answer(a: &QueryOutput, b: &QueryOutput, ctx: &str) {
    match (a, b) {
        (QueryOutput::Bfs(p), QueryOutput::Bfs(q)) => {
            assert_eq!(p.depth, q.depth, "{ctx}");
            assert_eq!(p.reached, q.reached, "{ctx}");
            assert_eq!(p.levels, q.levels, "{ctx}");
        }
        (QueryOutput::Cc(p), QueryOutput::Cc(q)) => {
            assert_eq!(p.component, q.component, "{ctx}");
            assert_eq!(p.count, q.count, "{ctx}");
        }
        (QueryOutput::Bc(p), QueryOutput::Bc(q)) => {
            assert_eq!(p.depth, q.depth, "{ctx}");
            assert_eq!(p.sigma, q.sigma, "{ctx}");
            assert_eq!(p.delta, q.delta, "{ctx}");
        }
        (QueryOutput::Pagerank(p), QueryOutput::Pagerank(q)) => {
            assert_eq!(p.ranks, q.ranks, "{ctx}");
            assert_eq!(p.iterations, q.iterations, "{ctx}");
        }
        (QueryOutput::LabelProp(p), QueryOutput::LabelProp(q)) => {
            assert_eq!(p.labels, q.labels, "{ctx}");
            assert_eq!(p.communities, q.communities, "{ctx}");
        }
        _ => panic!("{ctx}: mismatched output variants"),
    }
}

#[test]
fn every_app_matches_serial_at_every_shard_count() {
    let g = graph();
    let serial = Session::builder().graph(g.clone()).build().unwrap();
    let mut boundary_by_devices = Vec::new();
    for devices in [1usize, 2, 4, 8] {
        let sharded = Session::builder()
            .graph(g.clone())
            .shards(devices)
            .build()
            .unwrap();
        assert_eq!(sharded.num_shards(), Some(devices));
        let mut boundary_total = 0u64;
        for (i, query) in mixed_queries().iter().enumerate() {
            let want = serial.run(*query);
            let got = sharded.run(*query);
            let ctx = format!("query {i} on {devices} devices");
            assert_same_answer(&got.output, &want.output, &ctx);
            // Kernel-side statistics — launches, tallies, est_ms, memory
            // traffic, direction counters — are bitwise the serial run's.
            assert_eq!(kernel_side(got.stats), kernel_side(want.stats), "{ctx}");
            assert_eq!(
                got.stats.est_ms.to_bits(),
                want.stats.est_ms.to_bits(),
                "{ctx}"
            );
            if devices == 1 {
                assert_eq!(got.stats.exchange_ms, 0.0, "{ctx}");
                assert_eq!(got.stats.boundary_nodes, 0, "{ctx}");
                assert_eq!(got.stats.sync_steps, 0, "{ctx}");
            } else {
                assert!(got.stats.exchange_ms > 0.0, "{ctx}");
                assert!(got.stats.boundary_nodes > 0, "{ctx}");
                assert!(got.stats.sync_steps > 0, "{ctx}");
            }
            boundary_total += got.stats.boundary_nodes;
        }
        boundary_by_devices.push(boundary_total);
    }
    // Nested shard boundaries: refining the placement only adds cut
    // points, so boundary traffic is monotone in the device count.
    assert_eq!(boundary_by_devices[0], 0);
    assert!(boundary_by_devices[1] > 0);
    for pair in boundary_by_devices.windows(2) {
        assert!(pair[0] <= pair[1], "{boundary_by_devices:?}");
    }
}

#[test]
fn directions_compose_with_sharded_ownership() {
    // Low diameter + symmetrized so the adaptive heuristic really pulls.
    let g = social_graph(&SocialParams::twitter_like(700), 23).symmetrized();
    for direction in [
        DirectionMode::Push,
        DirectionMode::Pull,
        DirectionMode::Adaptive,
    ] {
        let serial = Session::builder()
            .graph(g.clone())
            .direction(direction)
            .build()
            .unwrap();
        for devices in [2usize, 4] {
            let sharded = Session::builder()
                .graph(g.clone())
                .direction(direction)
                .shards(devices)
                .build()
                .unwrap();
            for source in [0u32, 5, 31] {
                let want = serial.run(Bfs::from(source));
                let got = sharded.run(Bfs::from(source));
                let ctx = format!("{direction:?} source {source} on {devices} devices");
                assert_eq!(got.output.depth, want.output.depth, "{ctx}");
                assert_eq!(kernel_side(got.stats), kernel_side(want.stats), "{ctx}");
                assert!(got.stats.exchange_ms > 0.0, "{ctx}");
                if direction == DirectionMode::Adaptive {
                    // The mode switch really happened under sharding.
                    assert_eq!(got.stats.pull_steps, want.stats.pull_steps, "{ctx}");
                }
            }
        }
        if direction == DirectionMode::Adaptive {
            assert!(
                serial.run(Bfs::from(0)).stats.pull_steps >= 1,
                "adaptive never pulled — the direction leg is vacuous"
            );
        }
    }
}

#[test]
fn every_inner_engine_kind_matches_its_serial_oracle() {
    let g = graph();
    for kind in [
        EngineKind::Gcgt(Strategy::Full),
        EngineKind::Gcgt(Strategy::TwoPhase),
        EngineKind::GpuCsr,
        EngineKind::Gunrock,
    ] {
        let serial = Session::builder()
            .graph(g.clone())
            .engine(kind)
            .build()
            .unwrap();
        let sharded = Session::builder()
            .graph(g.clone())
            .engine(kind)
            .shards(4)
            .build()
            .unwrap();
        for source in [0u32, 311] {
            let want = serial.run(Bfs::from(source));
            let got = sharded.run(Bfs::from(source));
            let ctx = format!("{} source {source}", kind.name());
            assert_eq!(got.output.depth, want.output.depth, "{ctx}");
            assert_eq!(kernel_side(got.stats), kernel_side(want.stats), "{ctx}");
            assert!(got.stats.exchange_ms > 0.0, "{ctx}");
        }
    }
}

#[test]
fn streaming_shards_match_serial_streaming_under_per_device_budgets() {
    let g = graph();
    let incore = Session::builder().graph(g.clone()).build().unwrap();
    let scratch = incore.footprint() - incore.structure_bytes();
    let budget = scratch + (incore.structure_bytes() / 8).max(1);
    let device = DeviceConfig::titan_v_scaled(1 << 30);
    let serial = Session::builder()
        .graph(g.clone())
        .device(device)
        .memory_budget(budget)
        .engine(EngineKind::OutOfCore {
            inner: Strategy::Full,
        })
        .build()
        .unwrap();
    assert!(serial.is_streaming());
    let sharded = Session::builder()
        .graph(g.clone())
        .device(device)
        .memory_budget(budget)
        .engine(EngineKind::OutOfCore {
            inner: Strategy::Full,
        })
        .shards(4)
        .build()
        .expect("aggregate of four per-device caches fits the pool");
    assert!(sharded.is_streaming());
    for query in [
        Query::Bfs(0),
        Query::Cc,
        Query::Pagerank(Pagerank::default()),
    ] {
        let want = serial.run(query);
        let got = sharded.run(query);
        assert_same_answer(&got.output, &want.output, "streaming shards");
        // Decode cost-attribution survives the composition: streaming and
        // sharding both leave the modeled kernel time untouched.
        assert_eq!(got.stats.est_ms.to_bits(), want.stats.est_ms.to_bits());
        assert_eq!(got.stats.launches, want.stats.launches);
        assert!(got.stats.partition_faults > 0, "shards never faulted");
        assert!(got.stats.transfer_ms > 0.0);
        assert!(got.stats.exchange_ms > 0.0);
    }
}

#[test]
fn sharded_streaming_verifies_the_aggregate_cache_capacity() {
    let g = graph();
    let incore = Session::builder().graph(g.clone()).build().unwrap();
    let scratch = incore.footprint() - incore.structure_bytes();
    let per_device = scratch + (incore.structure_bytes() / 8).max(1);
    // A pool that holds one per-device cache comfortably but not eight.
    let device = DeviceConfig::titan_v_scaled(scratch + incore.structure_bytes() / 4);
    let build = |devices: usize| {
        Session::builder()
            .graph(g.clone())
            .device(device)
            .memory_budget(per_device)
            .engine(EngineKind::OutOfCore {
                inner: Strategy::Full,
            })
            .shards(devices)
            .build()
    };
    assert!(build(1).is_ok(), "one per-device cache fits");
    let err = build(8).unwrap_err();
    assert!(
        matches!(err, SessionError::Oom(_)),
        "eight per-device caches must overflow the pool, got {err:?}"
    );
}

#[test]
fn reordered_sharded_session_answers_in_original_ids() {
    let g = graph();
    let want = refalgo::bfs(&g, 17);
    let session = Session::builder()
        .graph(g)
        .reorder(Reordering::DegSort)
        .shards(4)
        .build()
        .unwrap();
    let run = session.run(Bfs::from(17));
    assert_eq!(run.output.depth, want.depth);
    assert!(run.stats.exchange_ms > 0.0);
}

#[test]
fn serve_pools_compose_with_sharding_bitwise() {
    // Workers × devices: a 4-worker pool over a 4-shard prepared graph —
    // every per-query report must be bitwise the sharded serial run,
    // exchange counters included.
    let g = graph();
    let prepared = Session::builder()
        .graph(g)
        .shards(4)
        .build()
        .unwrap()
        .prepared();
    let queries = mixed_queries();
    let one = ServePool::new(prepared.clone(), 1).unwrap().serve(&queries);
    let four = ServePool::new(prepared.clone(), 4).unwrap().serve(&queries);
    for (i, query) in queries.iter().enumerate() {
        let oracle = prepared.run(*query);
        assert_eq!(one.outputs[i], Ok(oracle.output.clone()), "query {i} (1w)");
        assert_eq!(four.outputs[i], Ok(oracle.output), "query {i} (4w)");
        assert_eq!(one.per_query[i], oracle.stats, "query {i} (1w)");
        assert_eq!(four.per_query[i], oracle.stats, "query {i} (4w)");
        assert!(four.per_query[i].exchange_ms > 0.0, "query {i}");
    }
    assert_eq!(one.outputs, four.outputs);
    assert_eq!(one.per_query, four.per_query);
    // The exchange is billed into the aggregate serving statistics and the
    // deterministic dispatch timeline.
    assert!(four.stats.exchange_ms > 0.0);
    assert_eq!(
        one.stats.exchange_ms.to_bits(),
        four.stats.exchange_ms.to_bits()
    );
    let serial_cost: f64 = four
        .per_query
        .iter()
        .map(|s| s.est_ms + s.transfer_ms + s.exchange_ms)
        .sum();
    assert!((one.stats.makespan_ms - serial_cost).abs() < 1e-12);
}

/// An arbitrary small graph as (node count, edge list).
fn arb_graph() -> impl PropStrategy<Value = Csr> {
    (2usize..120).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..400)
            .prop_map(move |edges| Csr::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_graph_any_shard_count_matches_serial(
        graph in arb_graph(),
        devices in 1usize..9,
        source_seed in 0u32..1000,
    ) {
        let source = source_seed % graph.num_nodes() as u32;
        let serial = Session::builder()
            .graph(graph.clone())
            .build()
            .unwrap()
            .run(Bfs::from(source));
        let sharded = Session::builder()
            .graph(graph)
            .shards(devices)
            .build()
            .unwrap()
            .run(Bfs::from(source));
        prop_assert_eq!(&sharded.output.depth, &serial.output.depth);
        prop_assert_eq!(sharded.output.reached, serial.output.reached);
        prop_assert_eq!(kernel_side(sharded.stats), kernel_side(serial.stats));
    }
}
