//! Cross-crate correctness matrix: every GCGT strategy and every GPU
//! baseline must produce oracle-identical results for every application,
//! across the structurally distinct graph families.

// The low-level engine layer is exercised deliberately here; the apps must
// be the non-deprecated `gcgt::core` ones, not the prelude shims.
use gcgt::core::{bc, bfs, cc, pagerank};
use gcgt::prelude::*;

fn families() -> Vec<(&'static str, Csr)> {
    vec![
        ("figure1", toys::figure1()),
        ("grid", toys::grid(12, 9)),
        ("binary_tree", toys::binary_tree(7)),
        ("web", web_graph(&WebParams::uk2002_like(900), 5)),
        ("social", social_graph(&SocialParams::ljournal_like(700), 6)),
        ("skewed", social_graph(&SocialParams::twitter_like(700), 7)),
        (
            "brain",
            brain_like(
                &BrainParams {
                    nodes: 600,
                    cluster_size: 80,
                    intra_band_frac: 0.5,
                    inter_links: 5,
                    random_links: 3,
                },
                8,
            ),
        ),
        ("rmat", rmat(10, 8_000, RmatParams::default(), 9)),
        ("sparse", erdos_renyi(500, 700, 10)),
    ]
}

fn device() -> DeviceConfig {
    DeviceConfig::titan_v_scaled(1 << 30)
}

#[test]
fn bfs_matches_oracle_for_every_strategy_and_family() {
    for (name, graph) in families() {
        let want = refalgo::bfs(&graph, 0);
        for strategy in Strategy::LADDER {
            let cfg = strategy.cgr_config(&CgrConfig::paper_default());
            let cgr = CgrGraph::encode(&graph, &cfg);
            let engine = GcgtEngine::new(&cgr, device(), strategy).unwrap();
            let got = bfs(&engine, 0);
            assert_eq!(got.depth, want.depth, "{name} / {strategy:?}");
            assert_eq!(got.reached, want.reached, "{name} / {strategy:?}");
        }
    }
}

#[test]
fn bfs_matches_oracle_for_gpu_baselines() {
    for (name, graph) in families() {
        let want = refalgo::bfs(&graph, 0);
        let gpucsr = GpuCsrEngine::new(&graph, device()).unwrap();
        assert_eq!(bfs(&gpucsr, 0).depth, want.depth, "{name} / gpucsr");
        let gunrock = GunrockEngine::new(&graph, device()).unwrap();
        assert_eq!(bfs(&gunrock, 0).depth, want.depth, "{name} / gunrock");
    }
}

#[test]
fn bfs_matches_oracle_for_cpu_baselines() {
    for (name, graph) in families() {
        let want = refalgo::bfs(&graph, 0);
        let ligra = LigraGraph::new(&graph);
        assert_eq!(ligra.bfs(0).result, want.depth, "{name} / ligra");
        let lplus = LigraPlusGraph::new(&graph);
        assert_eq!(lplus.bfs(0).result, want.depth, "{name} / ligra+");
    }
}

#[test]
fn cc_matches_oracle_across_engines() {
    for (name, graph) in families() {
        let want = refalgo::connected_components(&graph);
        let sym = graph.symmetrized();

        let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
        let cgr = CgrGraph::encode(&sym, &cfg);
        let engine = GcgtEngine::new(&cgr, device(), Strategy::Full).unwrap();
        let got = cc(&engine);
        assert_eq!(got.component, want.component, "{name} / gcgt");
        assert_eq!(got.count, want.count, "{name} / gcgt");

        let gpucsr = GpuCsrEngine::new(&sym, device()).unwrap();
        assert_eq!(cc(&gpucsr).component, want.component, "{name} / gpucsr");
    }
}

#[test]
fn bc_matches_oracle_across_engines() {
    for (name, graph) in families() {
        let want = refalgo::betweenness_from_source(&graph, 0);
        let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
        let cgr = CgrGraph::encode(&graph, &cfg);
        let engine = GcgtEngine::new(&cgr, device(), Strategy::Full).unwrap();
        let got = bc(&engine, 0);
        assert_eq!(got.depth, want.depth, "{name}");
        assert_eq!(got.sigma, want.sigma, "{name}: σ is exact in f64");
        for (i, (&a, &b)) in got.delta.iter().zip(&want.delta).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
                "{name}: δ[{i}] {a} vs {b}"
            );
        }
    }
}

#[test]
fn pagerank_matches_oracle() {
    for (name, graph) in families().into_iter().take(5) {
        let (want, _) = refalgo::pagerank(&graph, refalgo::PagerankConfig::default());
        let cfg = Strategy::Full.cgr_config(&CgrConfig::paper_default());
        let cgr = CgrGraph::encode(&graph, &cfg);
        let engine = GcgtEngine::new(&cgr, device(), Strategy::Full).unwrap();
        let got = pagerank(&engine, 0.85, 100, 1e-9);
        for (i, (&a, &b)) in got.ranks.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-6, "{name}: rank[{i}] {a} vs {b}");
        }
    }
}

#[test]
fn warp_width_does_not_affect_results() {
    let graph = web_graph(&WebParams::uk2002_like(600), 77);
    let want = refalgo::bfs(&graph, 0);
    for width in [4usize, 8, 16, 32, 64] {
        let mut dc = device();
        dc.warp_width = width;
        for strategy in [Strategy::Intuitive, Strategy::TaskStealing, Strategy::Full] {
            let cfg = strategy.cgr_config(&CgrConfig::paper_default());
            let cgr = CgrGraph::encode(&graph, &cfg);
            let engine = GcgtEngine::new(&cgr, dc, strategy).unwrap();
            assert_eq!(
                bfs(&engine, 0).depth,
                want.depth,
                "width {width} {strategy:?}"
            );
        }
    }
}
