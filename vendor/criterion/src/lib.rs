//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the surface the `gcgt-bench` benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`Throughput`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros — as a simple
//! wall-clock timer: warm up once, run `sample_size` timed samples, report
//! mean / min / max per benchmark to stdout. No statistics, no HTML reports,
//! no baselines; the real value of these benches in this repo is the tables
//! the simulator prints, which are deterministic regardless of timer quality.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_bench(&id, 10, None, f);
        self
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for derived reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for API parity; reporting happens per bench).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    /// Times `f`, recording one sample per configured run.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm-up (also primes caches/allocations out of the timed region).
        std_black_box(f());
        for _ in 0..self.per_sample {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        per_sample: samples,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<50} (no samples — closure never called iter)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let rate = throughput
        .map(|t| {
            let secs = mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / secs),
                Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / secs),
            }
        })
        .unwrap_or_default();
    println!("{id:<50} mean {mean:>12?}  min {min:>12?}  max {max:>12?}{rate}");
}

/// Declares a benchmark-group function over `fn(&mut Criterion)` benches.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn group_runs_and_samples() {
        benches();
        let mut b = Bencher {
            samples: Vec::new(),
            per_sample: 4,
        };
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 4);
    }
}
