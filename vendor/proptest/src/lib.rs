//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of proptest the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], `Just`, `prop_oneof!`, and the
//! [`proptest!`] macro with `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//! * **no shrinking** — a failing case reports its inputs via the panic
//!   message of the failed assertion only;
//! * **deterministic seeding** — each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly across runs.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: std::rc::Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy (the result of [`Strategy::boxed`] and
    /// [`crate::prop_oneof!`]).
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        #[allow(clippy::type_complexity)]
        gen: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Builds from a generation closure.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy {
                gen: std::rc::Rc::new(f),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Uniform choice among type-erased alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds from the alternative strategies.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// A constant strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies during a test run.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Deterministic RNG from a seed (the macro derives it from the
        /// test function's name).
        pub fn seeded(seed: u64) -> Self {
            TestRng {
                rng: StdRng::seed_from_u64(seed),
            }
        }
    }

    /// Run configuration (`cases` = generated inputs per test).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// FNV-1a over the test name — the deterministic per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let arm = $arm;
                $crate::strategy::BoxedStrategy::from_fn(move |rng| {
                    $crate::strategy::Strategy::generate(&arm, rng)
                })
            }),+
        ])
    };
}

/// Declares property tests: each function body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::seeded($crate::seed_from_name(stringify!($name)));
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("property failed at case {case}: {message}");
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::{Just, ProptestConfig, Strategy};
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_maps_compose(pair in (1u32..10, 1u32..10).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..100).contains(&pair));
        }

        #[test]
        fn flat_map_threads_the_outer_value(
            v in (2usize..20).prop_flat_map(|n| {
                crate::collection::vec(0..n as u32, 1..8).prop_map(move |xs| (n, xs))
            }),
        ) {
            let (n, xs) = v;
            prop_assert!(!xs.is_empty());
            for x in xs {
                prop_assert!((x as usize) < n);
            }
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = TestRng::seeded(9);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(0u32..1000, 0..50);
        let run = || {
            let mut rng = TestRng::seeded(42);
            (0..10).map(|_| s.generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
