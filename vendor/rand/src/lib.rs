//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-repo shim
//! provides exactly the surface the workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`rngs::StdRng`] and
//! [`SeedableRng::seed_from_u64`] — on a deterministic SplitMix64 core.
//! The graph generators only need a seeded, well-mixed stream, not
//! cryptographic quality, and determinism across platforms is a feature
//! here (every figure and test regenerates the same graphs).

use std::ops::{Range, RangeInclusive};

/// Types constructible from a seed. Only `seed_from_u64` is supported.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// A value uniformly sampleable from one 64-bit draw.
pub trait Standard: Sized {
    /// Maps a full-entropy 64-bit word to a uniform value.
    fn from_u64(word: u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_u64(word: u64) -> Self {
        // 53 high bits → uniform in [0, 1).
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_u64(word: u64) -> Self {
        (word >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_u64(word: u64) -> Self {
        word
    }
}

impl Standard for u32 {
    #[inline]
    fn from_u64(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn from_u64(word: u64) -> Self {
        word >> 63 == 1
    }
}

/// Ranges sampleable with one 64-bit draw (modulo reduction — the bias is
/// negligible at the span sizes the generators use).
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample_from(self, word: u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, word: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (word % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, word: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (word % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, usize);

impl SampleRange<u64> for Range<u64> {
    #[inline]
    fn sample_from(self, word: u64) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + word % (self.end - self.start)
    }
}

impl SampleRange<i64> for Range<i64> {
    #[inline]
    fn sample_from(self, word: u64) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((word % span) as i64)
    }
}

impl SampleRange<i32> for Range<i32> {
    #[inline]
    fn sample_from(self, word: u64) -> i32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((word % span) as i32)
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from(self, word: u64) -> f64 {
        self.start + f64::from_u64(word) * (self.end - self.start)
    }
}

/// The random-value interface: a 64-bit source plus convenience samplers.
pub trait Rng {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of `T` (`f64` in `[0, 1)`, full-range integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// A uniform value in `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self.next_u64())
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s `StdRng`.
    ///
    /// Passes the statistical needs of the synthetic generators (uniformity,
    /// independence across the sampled dimensions) and is reproducible
    /// everywhere from a single `u64` seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-advance once so seed 0 does not emit word 0 first.
            let mut rng = StdRng { state };
            let _ = rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
